//! Hand-rolled argument parsing (no external dependencies). Every malformed
//! input is a `Result` error surfaced as exit code 2 — parsing never panics.

use stint::obs::ObsConfig;
use stint::{FaultPlan, ReachKind, Variant};
use stint_suite::Scale;

pub const USAGE: &str = "\
stint-cli — STINT race detector (SPAA 2021 reproduction)

USAGE:
  stint-cli detect <bench> [--variant V] [--scale S] [--shards K]
                   [--compress] [--chunk-events N] [--witness]
                   [--reach R] [--online-parallel] [--workers W]
                   [--steal-seed N]
  stint-cli bugs
  stint-cli trace record <bench> <file> [--scale S] [--compress]
                   [--chunk-events N]
  stint-cli trace info <file>
  stint-cli trace replay <file> [--variant V] [--shards K] [--compress]
                   [--chunk-events N] [--witness]
  stint-cli witness verify <trace-file> <report.json>
  stint-cli grid [n]
  stint-cli help

  <bench>    chol | fft | heat | mmul | sort | stra | straz, plus the
             seeded-bug variants buggy-heat | buggy-merge | buggy-mmul
             (deterministically racy — for recording racy traces and
             witness smoke tests)
  --variant  vanilla | compiler | comp+rts | stint (default) | stint-btree;
             detect also accepts 'all' (every variant, run in parallel on a
             work-stealing pool); detect and trace replay also accept
             'batch' (two-phase batch mode: record/load the trace, then
             fan detection out over contiguous address shards on the
             work-stealing pool; the merged report is identical to the
             sequential one for every shard count)
  --scale    test (default) | s | m | paper
  --shards   address shards for --variant batch (1..=4096, default 4)
  --compress trace record: save the compressed chunked STINT-TRACE v2
             format (delta+run-length coded, per-chunk checksums) instead
             of the v1 text format; trace replay --variant batch: force
             streaming chunked detection (a v1 input is transcoded first;
             v2 inputs always stream, flag or not); detect --variant
             batch: run the recorded trace through the compressed
             streaming path instead of in-memory partitioning
  --chunk-events N
             events per compressed chunk (1..=16777216, default 4096);
             both the record-side chunk size and the streaming replay's
             per-chunk working-set bound
  --witness  capture verifiable witnesses with each reported race (event
             spans of both accesses, SP-Order tag evidence, spawn-tree
             lineage); off by default and free when off; re-validate with
             'stint-cli witness verify'
  --reach    sporder (default) | depa — reachability substrate for
             sequential detect: SP-Order over the labelled OM list, or
             relabel-free DePa depth-vector timestamps (immutable once a
             strand is published; same races, same report)
  --online-parallel
             detect while the program runs: the instrumented execution
             maintains the DePa substrate and each chunk of the event
             stream fans out over address shards on the work-stealing
             pool, against the live (lock-free) timestamps; the merged
             report is byte-identical for every worker count, steal seed
             and chunk size, and its racy intervals equal sequential
             STINT's; takes --shards/--chunk-events/--witness, not
             --variant batch/all or --compress
  --workers  pool workers for --online-parallel (0 = one per hardware
             thread, default; max 256)
  --steal-seed N
             perturb each pool worker's initial steal victim (determinism
             knob for --online-parallel; the report must not change)

  witness verify re-runs the independent WitnessChecker on every race in a
  --report-json report card against the recorded trace it came from: order
  bits are recomputed from the frozen rank permutations, lineage from the
  parent table, and each claimed span must hold a concretely conflicting
  access. A tampered witness exits 4.

GLOBAL OPTIONS (any command):
  --fault-plan SPEC   install a deterministic fault plan (key=value,flag,...;
                      e.g. 'seed=7,om-tags=16,shadow-pages=4'); also read
                      from the STINT_FAULTS environment variable
  --max-shadow-mb N   shadow-memory budget per structure, in MiB; on
                      exhaustion detection degrades soundly and exits 3
  --max-intervals N   interval-store budget (read + write trees); on
                      exhaustion detection degrades soundly and exits 3
  --obs SPEC          observability: off | counters | on | full |
                      spans=off|sampled|full | sample=MS (comma-composed);
                      also read from the STINT_OBS environment variable
                      (flag wins); sample=MS starts the periodic memory
                      sampler
  --metrics-out PATH  after the run, write all counters/gauges/histograms as
                      JSON (implies --obs on if observability is otherwise
                      off); PATH '-' writes to stdout
  --trace-out PATH    after the run, write recorded spans and gauge counter
                      tracks as Chrome trace_event JSON (load in
                      chrome://tracing or Perfetto; implies --obs on);
                      PATH '-' writes to stdout
  --mem-series-out PATH
                      after the run, write the sampled gauge time series as
                      JSON (implies --obs on with a 10 ms sample interval
                      unless --obs sample=MS chose one); PATH '-' writes to
                      stdout
  --stats-json PATH   (detect) write the run's DetectorStats as JSON,
                      including a process-wide gauge watermark snapshot
  --report-json PATH  (detect, trace replay) write the race-report-card as
                      JSON (schema stint-report-v1): totals, an explicit
                      truncated marker, coalesced racy intervals, and —
                      with --witness — the structured witness of every
                      kept race; PATH '-' writes to stdout

EXIT CODE: 0 = no races, 1 = races found, 2 = usage/IO error,
           3 = detector resource budget exhausted (report sound up to the
               failure point), 4 = internal detector failure or corrupt
               trace file (batch replay validates before detecting).";

/// Process/run-level options valid with every command: fault injection,
/// resource budgets and observability (budgets and `--stats-json` only
/// affect commands that run detection).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RunOpts {
    pub fault_plan: Option<FaultPlan>,
    pub max_shadow_mb: Option<u64>,
    pub max_intervals: Option<u64>,
    /// `--obs SPEC`: outer `None` = flag absent (environment decides);
    /// `Some(None)` = explicitly off; `Some(Some(cfg))` = enabled.
    pub obs: Option<Option<ObsConfig>>,
    pub metrics_out: Option<String>,
    pub trace_out: Option<String>,
    pub mem_series_out: Option<String>,
    pub stats_json: Option<String>,
    pub report_json: Option<String>,
}

/// `--variant` argument: one concrete variant, `all` of them, or the
/// sharded `batch` mode (which is a detection *strategy*, not a core
/// [`Variant`] — it always runs STINT detectors, one per address shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantSel {
    One(Variant),
    All,
    Batch,
}

#[derive(Debug, PartialEq)]
pub enum Parsed {
    Help,
    Detect {
        bench: String,
        variant: VariantSel,
        scale: Scale,
        shards: usize,
        compress: bool,
        chunk_events: usize,
        witness: bool,
        /// Reachability substrate for the sequential path (`--reach`).
        reach: ReachKind,
        /// `--online-parallel`: parallel online detection over live DePa.
        online: bool,
        /// Pool workers for `--online-parallel` (0 = hardware threads).
        workers: usize,
        /// Steal-victim seed for `--online-parallel`.
        steal_seed: u64,
    },
    Bugs,
    TraceRecord {
        bench: String,
        file: String,
        scale: Scale,
        compress: bool,
        chunk_events: usize,
    },
    TraceInfo {
        file: String,
    },
    TraceReplay {
        file: String,
        variant: VariantSel,
        shards: usize,
        compress: bool,
        chunk_events: usize,
        witness: bool,
    },
    /// `witness verify <trace> <report.json>`: re-validate every witness in
    /// a report card against the trace it was captured from.
    WitnessVerify {
        trace: String,
        report: String,
    },
    Grid {
        n: usize,
    },
}

fn parse_variant(s: &str) -> Result<VariantSel, String> {
    match s {
        "vanilla" => Ok(VariantSel::One(Variant::Vanilla)),
        "compiler" => Ok(VariantSel::One(Variant::Compiler)),
        "comp+rts" | "comprts" => Ok(VariantSel::One(Variant::CompRts)),
        "stint" => Ok(VariantSel::One(Variant::Stint)),
        "stint-btree" | "btree" => Ok(VariantSel::One(Variant::StintFlat)),
        "all" => Ok(VariantSel::All),
        "batch" => Ok(VariantSel::Batch),
        _ => Err(format!("unknown variant {s:?}")),
    }
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    Scale::parse(s).ok_or_else(|| format!("unknown scale {s:?}"))
}

/// The subcommand-level options `split_opts` pulls out of the argument
/// list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SubOpts {
    variant: VariantSel,
    scale: Scale,
    shards: usize,
    compress: bool,
    chunk_events: usize,
    witness: bool,
    reach: ReachKind,
    online: bool,
    workers: usize,
    steal_seed: u64,
}

impl Default for SubOpts {
    fn default() -> Self {
        SubOpts {
            variant: VariantSel::One(Variant::Stint),
            scale: Scale::Test,
            shards: 4,
            compress: false,
            chunk_events: stint::ctrace::DEFAULT_CHUNK_EVENTS,
            witness: false,
            reach: ReachKind::SpOrder,
            online: false,
            workers: 0,
            steal_seed: 0,
        }
    }
}

/// Pull `--variant`/`--scale`/`--shards`/`--compress`/`--chunk-events`/
/// `--witness` options out of `rest`, leaving positionals.
fn split_opts(rest: &[String]) -> Result<(Vec<String>, SubOpts), String> {
    let mut pos = Vec::new();
    let mut o = SubOpts::default();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--variant" => {
                let v = rest.get(i + 1).ok_or("--variant needs a value")?;
                o.variant = parse_variant(v)?;
                i += 2;
            }
            "--scale" => {
                let v = rest.get(i + 1).ok_or("--scale needs a value")?;
                o.scale = parse_scale(v)?;
                i += 2;
            }
            "--shards" => {
                let v = rest.get(i + 1).ok_or("--shards needs a value")?;
                o.shards = v.parse().map_err(|_| format!("bad --shards {v:?}"))?;
                if o.shards == 0 || o.shards > 4096 {
                    return Err("--shards must be in 1..=4096".into());
                }
                i += 2;
            }
            "--compress" => {
                o.compress = true;
                i += 1;
            }
            "--witness" => {
                o.witness = true;
                i += 1;
            }
            "--chunk-events" => {
                let v = rest.get(i + 1).ok_or("--chunk-events needs a value")?;
                o.chunk_events = v.parse().map_err(|_| format!("bad --chunk-events {v:?}"))?;
                if o.chunk_events == 0 || o.chunk_events > 16_777_216 {
                    return Err("--chunk-events must be in 1..=16777216".into());
                }
                i += 2;
            }
            "--reach" => {
                let v = rest.get(i + 1).ok_or("--reach needs a value")?;
                o.reach = match v.as_str() {
                    "sporder" => ReachKind::SpOrder,
                    "depa" => ReachKind::DePa,
                    _ => return Err(format!("unknown reach substrate {v:?}")),
                };
                i += 2;
            }
            "--online-parallel" => {
                o.online = true;
                i += 1;
            }
            "--workers" => {
                let v = rest.get(i + 1).ok_or("--workers needs a value")?;
                o.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
                if o.workers > 256 {
                    return Err("--workers must be in 0..=256".into());
                }
                i += 2;
            }
            "--steal-seed" => {
                let v = rest.get(i + 1).ok_or("--steal-seed needs a value")?;
                o.steal_seed = v.parse().map_err(|_| format!("bad --steal-seed {v:?}"))?;
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}"));
            }
            _ => {
                pos.push(rest[i].clone());
                i += 1;
            }
        }
    }
    Ok((pos, o))
}

/// Strip the global options (valid anywhere on the command line) out of
/// `argv` before command dispatch.
fn extract_run_opts(argv: &[String]) -> Result<(Vec<String>, RunOpts), String> {
    let mut rest = Vec::new();
    let mut opts = RunOpts::default();
    let mut i = 0;
    while i < argv.len() {
        let take_value = |name: &str| {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match argv[i].as_str() {
            "--fault-plan" => {
                let spec = take_value("--fault-plan")?;
                opts.fault_plan = Some(
                    FaultPlan::parse(&spec).map_err(|e| format!("--fault-plan {spec:?}: {e}"))?,
                );
                i += 2;
            }
            "--max-shadow-mb" => {
                let v = take_value("--max-shadow-mb")?;
                opts.max_shadow_mb = Some(
                    v.parse()
                        .map_err(|_| format!("bad --max-shadow-mb {v:?}"))?,
                );
                i += 2;
            }
            "--max-intervals" => {
                let v = take_value("--max-intervals")?;
                opts.max_intervals = Some(
                    v.parse()
                        .map_err(|_| format!("bad --max-intervals {v:?}"))?,
                );
                i += 2;
            }
            "--obs" => {
                let spec = take_value("--obs")?;
                opts.obs =
                    Some(ObsConfig::parse(&spec).map_err(|e| format!("--obs {spec:?}: {e}"))?);
                i += 2;
            }
            "--metrics-out" => {
                opts.metrics_out = Some(take_value("--metrics-out")?);
                i += 2;
            }
            "--trace-out" => {
                opts.trace_out = Some(take_value("--trace-out")?);
                i += 2;
            }
            "--mem-series-out" => {
                opts.mem_series_out = Some(take_value("--mem-series-out")?);
                i += 2;
            }
            "--stats-json" => {
                opts.stats_json = Some(take_value("--stats-json")?);
                i += 2;
            }
            "--report-json" => {
                opts.report_json = Some(take_value("--report-json")?);
                i += 2;
            }
            _ => {
                rest.push(argv[i].clone());
                i += 1;
            }
        }
    }
    Ok((rest, opts))
}

/// The online/substrate knobs are detect-only; trace subcommands reject
/// them rather than silently ignoring them.
fn reject_online_opts(o: &SubOpts, ctx: &str) -> Result<(), String> {
    if o.online {
        return Err(format!("--online-parallel does not apply to {ctx}"));
    }
    if o.reach != ReachKind::SpOrder {
        return Err(format!("--reach does not apply to {ctx}"));
    }
    if o.workers != 0 || o.steal_seed != 0 {
        return Err(format!("--workers/--steal-seed do not apply to {ctx}"));
    }
    Ok(())
}

pub fn parse(argv: &[String]) -> Result<(Parsed, RunOpts), String> {
    let (argv, opts) = extract_run_opts(argv)?;
    Ok((parse_cmd(&argv)?, opts))
}

fn parse_cmd(argv: &[String]) -> Result<Parsed, String> {
    let cmd = argv.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "help" | "--help" | "-h" => Ok(Parsed::Help),
        "detect" => {
            let (pos, o) = split_opts(&argv[1..])?;
            let [bench] = pos.as_slice() else {
                return Err("detect takes exactly one benchmark name".into());
            };
            if !crate::known_bench(bench) {
                return Err(format!("unknown benchmark {bench:?}"));
            }
            if o.online {
                if o.variant != VariantSel::One(Variant::Stint) {
                    return Err(
                        "--online-parallel is its own detection strategy (STINT shard \
                         detectors over live DePa); drop --variant"
                            .into(),
                    );
                }
                if o.compress {
                    return Err("--compress does not apply to --online-parallel \
                                (nothing is recorded)"
                        .into());
                }
            } else {
                if o.workers != 0 {
                    return Err("--workers needs --online-parallel".into());
                }
                if o.steal_seed != 0 {
                    return Err("--steal-seed needs --online-parallel".into());
                }
            }
            if o.reach == ReachKind::DePa && o.variant == VariantSel::Batch {
                return Err(
                    "--reach does not apply to --variant batch (batch replays a frozen \
                     snapshot); use --online-parallel for live DePa detection"
                        .into(),
                );
            }
            if o.compress && !o.online && o.variant != VariantSel::Batch {
                return Err("detect --compress needs --variant batch".into());
            }
            Ok(Parsed::Detect {
                bench: bench.clone(),
                variant: o.variant,
                scale: o.scale,
                shards: o.shards,
                compress: o.compress,
                chunk_events: o.chunk_events,
                witness: o.witness,
                reach: o.reach,
                online: o.online,
                workers: o.workers,
                steal_seed: o.steal_seed,
            })
        }
        "bugs" => Ok(Parsed::Bugs),
        "witness" => {
            let sub = argv
                .get(1)
                .map(String::as_str)
                .ok_or("witness needs a subcommand (verify)")?;
            if sub != "verify" {
                return Err(format!("unknown witness subcommand {sub:?}"));
            }
            let [_, _, trace, report] = argv else {
                return Err("witness verify takes <trace-file> <report.json>".into());
            };
            Ok(Parsed::WitnessVerify {
                trace: trace.clone(),
                report: report.clone(),
            })
        }
        "trace" => {
            let sub = argv
                .get(1)
                .map(String::as_str)
                .ok_or("trace needs a subcommand")?;
            match sub {
                "record" => {
                    let (pos, o) = split_opts(&argv[2..])?;
                    reject_online_opts(&o, "trace record")?;
                    let [bench, file] = pos.as_slice() else {
                        return Err("trace record takes <bench> <file>".into());
                    };
                    if !crate::known_bench(bench) {
                        return Err(format!("unknown benchmark {bench:?}"));
                    }
                    if o.witness {
                        return Err(
                            "--witness applies at detection time (detect, trace replay), \
                             not trace record"
                                .into(),
                        );
                    }
                    Ok(Parsed::TraceRecord {
                        bench: bench.clone(),
                        file: file.clone(),
                        scale: o.scale,
                        compress: o.compress,
                        chunk_events: o.chunk_events,
                    })
                }
                "info" => {
                    let [_, _, file] = argv else {
                        return Err("trace info takes <file>".into());
                    };
                    Ok(Parsed::TraceInfo { file: file.clone() })
                }
                "replay" => {
                    let (pos, o) = split_opts(&argv[2..])?;
                    reject_online_opts(&o, "trace replay")?;
                    let [file] = pos.as_slice() else {
                        return Err("trace replay takes <file>".into());
                    };
                    if o.variant == VariantSel::All {
                        return Err(
                            "trace replay needs one concrete --variant (or 'batch'), not 'all'"
                                .into(),
                        );
                    }
                    if o.compress && o.variant != VariantSel::Batch {
                        return Err("trace replay --compress needs --variant batch".into());
                    }
                    Ok(Parsed::TraceReplay {
                        file: file.clone(),
                        variant: o.variant,
                        shards: o.shards,
                        compress: o.compress,
                        chunk_events: o.chunk_events,
                        witness: o.witness,
                    })
                }
                _ => Err(format!("unknown trace subcommand {sub:?}")),
            }
        }
        "grid" => {
            let n = match argv.get(1) {
                None => 40,
                Some(x) => x.parse().map_err(|_| format!("bad grid size {x:?}"))?,
            };
            if n == 0 || n > 4000 {
                return Err("grid size must be in 1..=4000".into());
            }
            Ok(Parsed::Grid { n })
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    const CHUNK: usize = stint::ctrace::DEFAULT_CHUNK_EVENTS;

    #[test]
    fn parses_detect_with_options() {
        let p = parse_cmd(&v(&[
            "detect",
            "sort",
            "--variant",
            "comp+rts",
            "--scale",
            "s",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::Detect {
                bench: "sort".into(),
                variant: VariantSel::One(Variant::CompRts),
                scale: Scale::S,
                shards: 4,
                compress: false,
                chunk_events: CHUNK,
                witness: false,
                reach: ReachKind::SpOrder,
                online: false,
                workers: 0,
                steal_seed: 0,
            }
        );
    }

    #[test]
    fn parses_variant_all() {
        let p = parse_cmd(&v(&["detect", "fft", "--variant", "all"])).unwrap();
        assert_eq!(
            p,
            Parsed::Detect {
                bench: "fft".into(),
                variant: VariantSel::All,
                scale: Scale::Test,
                shards: 4,
                compress: false,
                chunk_events: CHUNK,
                witness: false,
                reach: ReachKind::SpOrder,
                online: false,
                workers: 0,
                steal_seed: 0,
            }
        );
        // `all` makes no sense for a single-detector replay.
        assert!(parse_cmd(&v(&["trace", "replay", "/tmp/t", "--variant", "all"])).is_err());
    }

    #[test]
    fn parses_variant_batch_and_shards() {
        let p = parse_cmd(&v(&[
            "detect",
            "mmul",
            "--variant",
            "batch",
            "--shards",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::Detect {
                bench: "mmul".into(),
                variant: VariantSel::Batch,
                scale: Scale::Test,
                shards: 7,
                compress: false,
                chunk_events: CHUNK,
                witness: false,
                reach: ReachKind::SpOrder,
                online: false,
                workers: 0,
                steal_seed: 0,
            }
        );
        // Batch replays a saved trace too, unlike 'all'.
        let p = parse_cmd(&v(&[
            "trace",
            "replay",
            "/tmp/t",
            "--variant",
            "batch",
            "--shards",
            "16",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::TraceReplay {
                file: "/tmp/t".into(),
                variant: VariantSel::Batch,
                shards: 16,
                compress: false,
                chunk_events: CHUNK,
                witness: false,
            }
        );
        assert!(parse_cmd(&v(&["detect", "mmul", "--shards", "0"])).is_err());
        assert!(parse_cmd(&v(&["detect", "mmul", "--shards", "5000"])).is_err());
        assert!(parse_cmd(&v(&["detect", "mmul", "--shards", "many"])).is_err());
        assert!(parse_cmd(&v(&["detect", "mmul", "--shards"])).is_err());
    }

    #[test]
    fn defaults() {
        let (p, _) = parse(&v(&["detect", "fft"])).unwrap();
        assert_eq!(
            p,
            Parsed::Detect {
                bench: "fft".into(),
                variant: VariantSel::One(Variant::Stint),
                scale: Scale::Test,
                shards: 4,
                compress: false,
                chunk_events: CHUNK,
                witness: false,
                reach: ReachKind::SpOrder,
                online: false,
                workers: 0,
                steal_seed: 0,
            }
        );
        assert_eq!(parse(&v(&[])).unwrap().0, Parsed::Help);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&v(&["detect"])).is_err());
        assert!(parse(&v(&["detect", "nope"])).is_err());
        assert!(parse(&v(&["detect", "sort", "--variant", "x"])).is_err());
        assert!(parse(&v(&["detect", "sort", "--scale"])).is_err());
        assert!(parse(&v(&["detect", "sort", "--wat"])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["trace"])).is_err());
        assert!(parse(&v(&["trace", "record", "sort"])).is_err());
        assert!(parse(&v(&["grid", "0"])).is_err());
        assert!(parse(&v(&["grid", "abc"])).is_err());
    }

    #[test]
    fn parses_trace_commands() {
        assert_eq!(
            parse(&v(&["trace", "record", "mmul", "/tmp/t.trace"]))
                .unwrap()
                .0,
            Parsed::TraceRecord {
                bench: "mmul".into(),
                file: "/tmp/t.trace".into(),
                scale: Scale::Test,
                compress: false,
                chunk_events: CHUNK,
            }
        );
        assert_eq!(
            parse(&v(&["trace", "info", "/tmp/t.trace"])).unwrap().0,
            Parsed::TraceInfo {
                file: "/tmp/t.trace".into()
            }
        );
        assert_eq!(
            parse(&v(&[
                "trace",
                "replay",
                "/tmp/t.trace",
                "--variant",
                "vanilla"
            ]))
            .unwrap()
            .0,
            Parsed::TraceReplay {
                file: "/tmp/t.trace".into(),
                variant: VariantSel::One(Variant::Vanilla),
                shards: 4,
                compress: false,
                chunk_events: CHUNK,
                witness: false,
            }
        );
    }

    #[test]
    fn parses_global_run_opts_anywhere() {
        let (p, opts) = parse(&v(&[
            "detect",
            "mmul",
            "--max-intervals",
            "10",
            "--variant",
            "stint",
            "--fault-plan",
            "seed=7,om-tags=16",
            "--max-shadow-mb",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::Detect {
                bench: "mmul".into(),
                variant: VariantSel::One(Variant::Stint),
                scale: Scale::Test,
                shards: 4,
                compress: false,
                chunk_events: CHUNK,
                witness: false,
                reach: ReachKind::SpOrder,
                online: false,
                workers: 0,
                steal_seed: 0,
            }
        );
        assert_eq!(opts.max_intervals, Some(10));
        assert_eq!(opts.max_shadow_mb, Some(2));
        let plan = opts.fault_plan.expect("plan parsed");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.om_tag_bits, Some(16));
    }

    #[test]
    fn rejects_bad_run_opts() {
        assert!(parse(&v(&["detect", "sort", "--fault-plan"])).is_err());
        assert!(parse(&v(&["detect", "sort", "--fault-plan", "wat=1"])).is_err());
        assert!(parse(&v(&["detect", "sort", "--max-shadow-mb", "lots"])).is_err());
        assert!(parse(&v(&["detect", "sort", "--max-intervals", "-3"])).is_err());
        assert!(parse(&v(&["detect", "sort", "--obs", "wat"])).is_err());
        assert!(parse(&v(&["detect", "sort", "--metrics-out"])).is_err());
    }

    #[test]
    fn parses_obs_and_export_opts() {
        let (_, opts) = parse(&v(&[
            "detect",
            "sort",
            "--obs",
            "full",
            "--metrics-out",
            "/tmp/m.json",
            "--trace-out",
            "/tmp/t.json",
            "--mem-series-out",
            "-",
            "--stats-json",
            "/tmp/s.json",
        ]))
        .unwrap();
        assert_eq!(
            opts.obs,
            Some(Some(ObsConfig {
                spans: stint::obs::SpanMode::Full,
                sample_ms: None,
            }))
        );
        assert_eq!(opts.metrics_out.as_deref(), Some("/tmp/m.json"));
        assert_eq!(opts.trace_out.as_deref(), Some("/tmp/t.json"));
        assert_eq!(opts.mem_series_out.as_deref(), Some("-"));
        assert_eq!(opts.stats_json.as_deref(), Some("/tmp/s.json"));
        // Explicit off round-trips as Some(None).
        let (_, opts) = parse(&v(&["bugs", "--obs", "off"])).unwrap();
        assert_eq!(opts.obs, Some(None));
    }

    #[test]
    fn parses_compress_and_chunk_events() {
        let p = parse_cmd(&v(&[
            "trace",
            "record",
            "mmul",
            "/tmp/t",
            "--compress",
            "--chunk-events",
            "128",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::TraceRecord {
                bench: "mmul".into(),
                file: "/tmp/t".into(),
                scale: Scale::Test,
                compress: true,
                chunk_events: 128,
            }
        );
        let p = parse_cmd(&v(&[
            "trace",
            "replay",
            "/tmp/t",
            "--variant",
            "batch",
            "--compress",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::TraceReplay {
                file: "/tmp/t".into(),
                variant: VariantSel::Batch,
                shards: 4,
                compress: true,
                chunk_events: CHUNK,
                witness: false,
            }
        );
        let p = parse_cmd(&v(&["detect", "mmul", "--variant", "batch", "--compress"])).unwrap();
        assert_eq!(
            p,
            Parsed::Detect {
                bench: "mmul".into(),
                variant: VariantSel::Batch,
                scale: Scale::Test,
                shards: 4,
                compress: true,
                chunk_events: CHUNK,
                witness: false,
                reach: ReachKind::SpOrder,
                online: false,
                workers: 0,
                steal_seed: 0,
            }
        );
        // --compress is a batch-mode knob everywhere but trace record.
        assert!(parse_cmd(&v(&["detect", "mmul", "--compress"])).is_err());
        assert!(parse_cmd(&v(&[
            "trace",
            "replay",
            "/tmp/t",
            "--variant",
            "stint",
            "--compress"
        ]))
        .is_err());
        // Bounds and arity checks.
        assert!(parse_cmd(&v(&["trace", "record", "mmul", "/tmp/t", "--chunk-events"])).is_err());
        assert!(parse_cmd(&v(&[
            "trace",
            "record",
            "mmul",
            "/tmp/t",
            "--chunk-events",
            "0"
        ]))
        .is_err());
        assert!(parse_cmd(&v(&[
            "trace",
            "record",
            "mmul",
            "/tmp/t",
            "--chunk-events",
            "99999999"
        ]))
        .is_err());
    }

    #[test]
    fn parses_witness_flag_and_verify() {
        let p = parse_cmd(&v(&["detect", "buggy-mmul", "--witness"])).unwrap();
        assert_eq!(
            p,
            Parsed::Detect {
                bench: "buggy-mmul".into(),
                variant: VariantSel::One(Variant::Stint),
                scale: Scale::Test,
                shards: 4,
                compress: false,
                chunk_events: CHUNK,
                witness: true,
                reach: ReachKind::SpOrder,
                online: false,
                workers: 0,
                steal_seed: 0,
            }
        );
        let p = parse_cmd(&v(&[
            "trace",
            "replay",
            "/tmp/t",
            "--variant",
            "batch",
            "--witness",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::TraceReplay {
                file: "/tmp/t".into(),
                variant: VariantSel::Batch,
                shards: 4,
                compress: false,
                chunk_events: CHUNK,
                witness: true,
            }
        );
        assert_eq!(
            parse_cmd(&v(&["witness", "verify", "/tmp/t", "/tmp/r.json"])).unwrap(),
            Parsed::WitnessVerify {
                trace: "/tmp/t".into(),
                report: "/tmp/r.json".into(),
            }
        );
        // Capture is a detection-time knob; recording doesn't take it.
        assert!(parse_cmd(&v(&["trace", "record", "mmul", "/tmp/t", "--witness"])).is_err());
        assert!(parse_cmd(&v(&["witness"])).is_err());
        assert!(parse_cmd(&v(&["witness", "frobnicate"])).is_err());
        assert!(parse_cmd(&v(&["witness", "verify", "/tmp/t"])).is_err());
        // --report-json is a global option with a value.
        let (_, opts) = parse(&v(&["detect", "sort", "--report-json", "/tmp/r.json"])).unwrap();
        assert_eq!(opts.report_json.as_deref(), Some("/tmp/r.json"));
        assert!(parse(&v(&["detect", "sort", "--report-json"])).is_err());
    }

    #[test]
    fn parses_reach_and_online_parallel() {
        let p = parse_cmd(&v(&["detect", "mmul", "--reach", "depa"])).unwrap();
        assert_eq!(
            p,
            Parsed::Detect {
                bench: "mmul".into(),
                variant: VariantSel::One(Variant::Stint),
                scale: Scale::Test,
                shards: 4,
                compress: false,
                chunk_events: CHUNK,
                witness: false,
                reach: ReachKind::DePa,
                online: false,
                workers: 0,
                steal_seed: 0,
            }
        );
        let p = parse_cmd(&v(&[
            "detect",
            "buggy-mmul",
            "--online-parallel",
            "--workers",
            "4",
            "--steal-seed",
            "7",
            "--shards",
            "3",
            "--chunk-events",
            "64",
            "--witness",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::Detect {
                bench: "buggy-mmul".into(),
                variant: VariantSel::One(Variant::Stint),
                scale: Scale::Test,
                shards: 3,
                compress: false,
                chunk_events: 64,
                witness: true,
                reach: ReachKind::SpOrder,
                online: true,
                workers: 4,
                steal_seed: 7,
            }
        );
        // Substrate and pool knobs are detect-only and internally coherent.
        assert!(parse_cmd(&v(&["detect", "mmul", "--reach", "wat"])).is_err());
        assert!(parse_cmd(&v(&["detect", "mmul", "--reach"])).is_err());
        assert!(parse_cmd(&v(&["detect", "mmul", "--workers", "2"])).is_err());
        assert!(parse_cmd(&v(&["detect", "mmul", "--steal-seed", "9"])).is_err());
        assert!(parse_cmd(&v(&[
            "detect",
            "mmul",
            "--workers",
            "300",
            "--online-parallel"
        ]))
        .is_err());
        assert!(parse_cmd(&v(&[
            "detect",
            "mmul",
            "--online-parallel",
            "--variant",
            "batch"
        ]))
        .is_err());
        assert!(parse_cmd(&v(&[
            "detect",
            "mmul",
            "--online-parallel",
            "--variant",
            "all"
        ]))
        .is_err());
        assert!(parse_cmd(&v(&["detect", "mmul", "--online-parallel", "--compress"])).is_err());
        assert!(parse_cmd(&v(&[
            "detect",
            "mmul",
            "--variant",
            "batch",
            "--reach",
            "depa"
        ]))
        .is_err());
        assert!(parse_cmd(&v(&[
            "trace",
            "record",
            "mmul",
            "/tmp/t",
            "--online-parallel"
        ]))
        .is_err());
        assert!(parse_cmd(&v(&["trace", "replay", "/tmp/t", "--reach", "depa"])).is_err());
        assert!(parse_cmd(&v(&["trace", "replay", "/tmp/t", "--workers", "2"])).is_err());
    }

    #[test]
    fn parses_grid() {
        assert_eq!(parse(&v(&["grid"])).unwrap().0, Parsed::Grid { n: 40 });
        assert_eq!(
            parse(&v(&["grid", "100"])).unwrap().0,
            Parsed::Grid { n: 100 }
        );
    }
}
