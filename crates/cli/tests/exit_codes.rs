//! End-to-end exit-code contract of `stint-cli`:
//! 0 = no races, 1 = races found, 2 = usage error, 3 = resource budget
//! exhausted (sound partial report), 4 = internal detector failure.

use std::process::{Command, Output};

fn cli(args: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_stint-cli"));
    // Isolate from any fault plan in the test runner's environment.
    c.env_remove("STINT_FAULTS");
    c.args(args);
    c
}

fn run(args: &[&str]) -> Output {
    cli(args).output().expect("spawn stint-cli")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no exit code (killed by signal?)")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn exit_0_race_free_run() {
    let out = run(&["detect", "sort"]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("race free"));
}

#[test]
fn exit_1_races_found() {
    let out = run(&["bugs"]);
    assert_eq!(code(&out), 1, "stderr: {}", stderr(&out));
}

#[test]
fn exit_2_usage_errors() {
    for args in [
        &["detect", "nope"][..],
        &["frobnicate"][..],
        &["detect", "sort", "--variant", "x"][..],
        &["detect", "sort", "--fault-plan", "wat=1"][..],
        &["detect", "sort", "--max-intervals", "lots"][..],
    ] {
        let out = run(args);
        assert_eq!(code(&out), 2, "args {args:?}, stderr: {}", stderr(&out));
        assert!(stderr(&out).contains("error:"), "args {args:?}");
    }
}

#[test]
fn exit_3_interval_budget_exhausted() {
    let out = run(&["detect", "mmul", "--max-intervals", "1"]);
    assert_eq!(code(&out), 3, "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("detector overloaded"), "stderr: {err}");
    assert!(err.contains("sound up to that point"), "stderr: {err}");
}

#[test]
fn exit_3_shadow_budget_exhausted() {
    let out = run(&[
        "detect",
        "sort",
        "--variant",
        "vanilla",
        "--max-shadow-mb",
        "0",
    ]);
    assert_eq!(code(&out), 3, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("shadow memory"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn exit_4_injected_internal_failure() {
    let out = run(&["detect", "sort", "--fault-plan", "panic-at-flush=1"]);
    assert_eq!(code(&out), 4, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("poisoned"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn fault_plan_env_var_is_honored() {
    let out = cli(&["detect", "sort"])
        .env("STINT_FAULTS", "panic-at-flush=1")
        .output()
        .expect("spawn stint-cli");
    assert_eq!(code(&out), 4, "stderr: {}", stderr(&out));

    let out = cli(&["detect", "sort"])
        .env("STINT_FAULTS", "not-a-knob")
        .output()
        .expect("spawn stint-cli");
    assert_eq!(code(&out), 2, "stderr: {}", stderr(&out));
}

#[test]
fn degraded_run_still_prints_partial_report() {
    // The partial report must be printed before the exit-3 error: the
    // degradation message promises "results sound up to that point".
    let out = run(&["detect", "heat", "--max-intervals", "1"]);
    assert_eq!(code(&out), 3, "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("heat under"), "stdout: {stdout}");
}
