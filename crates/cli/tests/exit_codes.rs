//! End-to-end exit-code contract of `stint-cli`:
//! 0 = no races, 1 = races found, 2 = usage error, 3 = resource budget
//! exhausted (sound partial report), 4 = internal detector failure.

use std::process::{Command, Output};

fn cli(args: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_stint-cli"));
    // Isolate from any fault plan in the test runner's environment.
    c.env_remove("STINT_FAULTS");
    c.args(args);
    c
}

fn run(args: &[&str]) -> Output {
    cli(args).output().expect("spawn stint-cli")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no exit code (killed by signal?)")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn exit_0_race_free_run() {
    let out = run(&["detect", "sort"]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("race free"));
}

#[test]
fn exit_1_races_found() {
    let out = run(&["bugs"]);
    assert_eq!(code(&out), 1, "stderr: {}", stderr(&out));
}

#[test]
fn exit_2_usage_errors() {
    for args in [
        &["detect", "nope"][..],
        &["frobnicate"][..],
        &["detect", "sort", "--variant", "x"][..],
        &["detect", "sort", "--fault-plan", "wat=1"][..],
        &["detect", "sort", "--max-intervals", "lots"][..],
    ] {
        let out = run(args);
        assert_eq!(code(&out), 2, "args {args:?}, stderr: {}", stderr(&out));
        assert!(stderr(&out).contains("error:"), "args {args:?}");
    }
}

/// A malformed fault spec is a usage error that names the offending token
/// verbatim — both for the flag and for the environment variable — so the
/// user can find the typo in a long comma-separated plan.
#[test]
fn exit_2_bad_fault_token_is_named() {
    let out = run(&["detect", "sort", "--fault-plan", "frobnicate"]);
    assert_eq!(code(&out), 2, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("\"frobnicate\""),
        "stderr must name the token: {}",
        stderr(&out)
    );

    let out = cli(&["detect", "sort"])
        .env("STINT_FAULTS", "seed=7,shadow-page-cap=banana")
        .output()
        .expect("spawn stint-cli");
    assert_eq!(code(&out), 2, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("\"shadow-page-cap=banana\""),
        "stderr must name the token: {}",
        stderr(&out)
    );
}

#[test]
fn exit_3_interval_budget_exhausted() {
    let out = run(&["detect", "mmul", "--max-intervals", "1"]);
    assert_eq!(code(&out), 3, "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("detector overloaded"), "stderr: {err}");
    assert!(err.contains("sound up to that point"), "stderr: {err}");
}

#[test]
fn exit_3_shadow_budget_exhausted() {
    let out = run(&[
        "detect",
        "sort",
        "--variant",
        "vanilla",
        "--max-shadow-mb",
        "0",
    ]);
    assert_eq!(code(&out), 3, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("shadow memory"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn exit_4_injected_internal_failure() {
    let out = run(&["detect", "sort", "--fault-plan", "panic-at-flush=1"]);
    assert_eq!(code(&out), 4, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("poisoned"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn fault_plan_env_var_is_honored() {
    let out = cli(&["detect", "sort"])
        .env("STINT_FAULTS", "panic-at-flush=1")
        .output()
        .expect("spawn stint-cli");
    assert_eq!(code(&out), 4, "stderr: {}", stderr(&out));

    let out = cli(&["detect", "sort"])
        .env("STINT_FAULTS", "not-a-knob")
        .output()
        .expect("spawn stint-cli");
    assert_eq!(code(&out), 2, "stderr: {}", stderr(&out));
}

/// Unique temp path for one test's scratch trace file.
fn tmp_trace(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("stint-cli-{tag}-{}.trace", std::process::id()))
}

#[test]
fn batch_replay_is_shard_invariant_and_exits_0_on_clean_traces() {
    let path = tmp_trace("clean");
    let p = path.to_str().expect("utf-8 temp path");
    let out = run(&["trace", "record", "sort", p]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let a = run(&["trace", "replay", p, "--variant", "batch", "--shards", "1"]);
    assert_eq!(code(&a), 0, "stderr: {}", stderr(&a));
    let b = run(&["trace", "replay", p, "--variant", "batch", "--shards", "7"]);
    assert_eq!(code(&b), 0, "stderr: {}", stderr(&b));
    // The replay output is byte-identical regardless of the shard count.
    assert_eq!(a.stdout, b.stdout, "batch replay output varies with K");
    assert!(String::from_utf8_lossy(&a.stdout).contains("race free"));
    let _ = std::fs::remove_file(&path);

    let out = run(&["detect", "sort", "--variant", "batch", "--shards", "3"]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("race free"));
}

#[test]
fn batch_exit_1_on_a_racy_trace() {
    // Hand-written trace: strands 1 and 2 have crossed English/Hebrew
    // ranks, so they are parallel — and both write word 0x10.
    let path = tmp_trace("racy");
    std::fs::write(
        &path,
        "STINT-TRACE v1\nstrands 3\n0 0\n1 2\n2 1\nevents 4\n\
         s 1 0x40 4\ne 1 0x0 0\ns 2 0x40 4\ne 2 0x0 0\n",
    )
    .expect("write racy trace");
    let p = path.to_str().expect("utf-8 temp path");
    let out = run(&["trace", "replay", p, "--variant", "batch"]);
    assert_eq!(code(&out), 1, "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("write-write"), "stdout: {stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn batch_exit_4_on_corrupted_traces() {
    let good = "STINT-TRACE v1\nstrands 3\n0 0\n1 2\n2 1\nevents 4\n\
                s 1 0x40 4\ne 1 0x0 0\ns 2 0x40 4\ne 2 0x0 0\n";
    let corruptions: [(&str, String); 3] = [
        ("truncated", good[..good.len() / 2].to_string()),
        (
            "version",
            good.replacen("STINT-TRACE v1", "STINT-TRACE v3", 1),
        ),
        // Parses fine, but the strand id does not exist in the snapshot.
        ("bitflip", good.replacen("s 2 0x40 4", "s 222 0x40 4", 1)),
    ];
    for (tag, text) in corruptions {
        let path = tmp_trace(tag);
        std::fs::write(&path, text).expect("write corrupt trace");
        let p = path.to_str().expect("utf-8 temp path");
        let out = run(&["trace", "replay", p, "--variant", "batch"]);
        assert_eq!(code(&out), 4, "{tag}: stderr: {}", stderr(&out));
        assert!(
            stderr(&out).contains("corrupt trace"),
            "{tag}: stderr: {}",
            stderr(&out)
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn batch_usage_errors_exit_2() {
    for args in [
        &["detect", "sort", "--variant", "batch", "--shards", "0"][..],
        &["detect", "sort", "--variant", "batch", "--shards", "9999"][..],
        &[
            "trace",
            "replay",
            "/nonexistent.trace",
            "--variant",
            "batch",
        ][..],
        &[
            "detect",
            "sort",
            "--variant",
            "batch",
            "--stats-json",
            "/tmp/x.json",
        ][..],
        &[
            "detect",
            "sort",
            "--variant",
            "batch",
            "--max-intervals",
            "9",
        ][..],
    ] {
        let out = run(args);
        assert_eq!(code(&out), 2, "args {args:?}, stderr: {}", stderr(&out));
    }
}

#[test]
fn batch_exit_4_on_injected_shard_panic() {
    let out = run(&[
        "detect",
        "sort",
        "--variant",
        "batch",
        "--fault-plan",
        "panic-at-flush=1",
    ]);
    assert_eq!(code(&out), 4, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("poisoned"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn degraded_run_still_prints_partial_report() {
    // The partial report must be printed before the exit-3 error: the
    // degradation message promises "results sound up to that point".
    let out = run(&["detect", "heat", "--max-intervals", "1"]);
    assert_eq!(code(&out), 3, "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("heat under"), "stdout: {stdout}");
}
