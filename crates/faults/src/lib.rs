//! Deterministic fault injection and the stack-wide failure model.
//!
//! Production-shaped race detectors treat resource exhaustion as a
//! first-class, tested state. This crate provides the two halves of that
//! story for the whole workspace:
//!
//! * [`FaultPlan`] — a process-wide, seedable description of which faults to
//!   inject: forced order-maintenance relabel storms and artificially
//!   narrowed tag spaces (`om`), shadow-page allocation caps and simulated
//!   OOM (`shadow`), worst-case treap priorities (`ivtree`), worker
//!   spawn/panic failures (`cilkrt`), and an injected panic mid-detection
//!   (`core`). Plans are parsed from a compact `key=value,flag,...` spec
//!   (the CLI's `--fault-plan`, or the `STINT_FAULTS` environment variable)
//!   and installed globally with [`install`].
//! * [`DetectorError`] — the structured error that replaces
//!   abort-on-exhaustion everywhere: a resource ran out
//!   ([`DetectorError::ResourceExhausted`], CLI exit code 3) or the detector
//!   state was poisoned by a panic ([`DetectorError::Poisoned`], exit
//!   code 4). Components that cannot thread a `Result` through their hot
//!   call chain [`raise`](DetectorError::raise) the error as a typed panic
//!   payload; the panic-safe session in `stint::try_detect_with` catches it
//!   and hands the caller the structured value.
//!
//! # Zero cost when disabled
//!
//! Every query goes through one relaxed load of a global `AtomicBool`
//! ([`is_active`]); with no plan installed that is the entire cost. All
//! consumers additionally *sample* their knobs at construction time (a
//! detector run constructs fresh structures), so the per-operation fault
//! checks are plain field tests on already-constructed structures — the
//! perf gate asserts the disabled path stays within noise of the committed
//! baselines.
//!
//! # Determinism
//!
//! A plan is a pure value plus a `seed`; the helpers derive any "when does
//! the fault fire" decision from `splitmix64(seed ^ salt)`, so two runs with
//! the same plan inject exactly the same faults at exactly the same points.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Which resource a [`DetectorError::ResourceExhausted`] ran out of.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Shadow-memory pages (word shadow) or chunks (bit shadow).
    ShadowPages,
    /// Stored intervals across the read/write access-history trees.
    Intervals,
    /// Order-maintenance tag space (list-labelling universe).
    OmTags,
    /// Work-stealing runtime workers.
    Workers,
    /// Wall-clock budget of a detection session (`stint-serve` per-session
    /// timeouts). The `limit` field carries the timeout in milliseconds.
    WallClock,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resource::ShadowPages => write!(f, "shadow memory"),
            Resource::Intervals => write!(f, "interval store"),
            Resource::OmTags => write!(f, "order-maintenance tag space"),
            Resource::Workers => write!(f, "runtime workers"),
            Resource::WallClock => write!(f, "wall-clock budget"),
        }
    }
}

/// Structured failure of a detection run. This is the value that flows from
/// the core detectors up through `cilk`/`cilkrt` to the CLI instead of an
/// abort: either a resource budget was exhausted (the verdict so far is
/// sound — "results sound up to that point") or a panic poisoned the
/// detector state (no verdict can be trusted).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectorError {
    /// A resource limit — injected by a fault plan or set by a real
    /// `--max-*` budget — was reached. Detection stopped recording at that
    /// point; every race reported before it is real.
    ResourceExhausted {
        resource: Resource,
        /// The limit that was hit, in the resource's own unit (pages,
        /// intervals, tags, workers).
        limit: u64,
        /// First 4-byte shadow word that could no longer be tracked, when
        /// the resource is address-shaped.
        at_word: Option<u64>,
    },
    /// A panic unwound through the detector; its state is poisoned and the
    /// partial verdict must not be trusted.
    Poisoned { detail: String },
    /// A recorded trace failed to parse or validate (truncated file, flipped
    /// bits, wrong format version, strand ids outside the frozen
    /// reachability snapshot). Nothing was detected; there is no partial
    /// verdict at all.
    CorruptTrace { detail: String },
}

impl DetectorError {
    /// CLI exit code for this failure (3 = resource-exhausted, 4 = internal).
    pub fn exit_code(&self) -> u8 {
        match self {
            DetectorError::ResourceExhausted { .. } => 3,
            DetectorError::Poisoned { .. } | DetectorError::CorruptTrace { .. } => 4,
        }
    }

    /// Raise this error as a typed panic payload. Components whose call
    /// chains cannot return `Result` (e.g. order-maintenance insertion deep
    /// under a spawn) use this; `stint::try_detect_with` catches the payload
    /// and returns it as a structured `Err`.
    pub fn raise(self) -> ! {
        OBS_ERRORS_RAISED.incr();
        stint_obs::event("fault.raise");
        std::panic::panic_any(self)
    }

    /// Recover a structured error from a caught panic payload: a payload
    /// raised via [`DetectorError::raise`] comes back as-is; anything else
    /// becomes [`DetectorError::Poisoned`] with the panic message.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> DetectorError {
        match payload.downcast::<DetectorError>() {
            Ok(e) => *e,
            Err(payload) => {
                let detail = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("panic with non-string payload")
                    .to_string();
                DetectorError::Poisoned { detail }
            }
        }
    }
}

impl std::fmt::Display for DetectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorError::ResourceExhausted {
                resource,
                limit,
                at_word,
            } => {
                write!(
                    f,
                    "detector overloaded: {resource} exhausted (limit {limit})"
                )?;
                if let Some(w) = at_word {
                    write!(f, " at address {:#x}", w * 4)?;
                }
                write!(f, "; results sound up to that point")
            }
            DetectorError::Poisoned { detail } => {
                write!(f, "detector state poisoned by panic: {detail}")
            }
            DetectorError::CorruptTrace { detail } => {
                write!(f, "corrupt trace: {detail}")
            }
        }
    }
}

impl std::error::Error for DetectorError {}

/// A deterministic description of the faults to inject into a run.
///
/// The default plan injects nothing. Specs are comma-separated
/// `key=value` pairs (or bare flags):
///
/// | spec key | field | fault |
/// |---|---|---|
/// | `seed=N` | `seed` | perturbs *when* scheduled faults fire |
/// | `om-tags=N` | `om_tag_bits` | narrow the OM tag universe to `2^N` tags |
/// | `om-storm=N` | `om_relabel_storm` | force a relabel pass every ~N inserts |
/// | `shadow-pages=N` | `shadow_page_cap` | cap shadow page/chunk allocations at N |
/// | `shadow-oom-at=N` | `shadow_oom_at` | the ~Nth page/chunk allocation fails |
/// | `treap-degenerate` | `treap_degenerate` | worst-case (monotone) treap priorities |
/// | `worker-spawn-fail=N` | `worker_spawn_fail_from` | spawning worker N (and later) fails |
/// | `worker-panic=N` | `worker_panic_from` | worker N (and later) panics at startup |
/// | `panic-at-flush=N` | `panic_at_flush` | inject a panic at the Nth strand flush |
/// | `serve-panic-session=N` | `serve_panic_session` | every ~Nth served session panics mid-flight |
/// | `serve-trunc-frame=N` | `serve_trunc_frame` | every ~Nth response frame is truncated on the wire |
/// | `serve-journal-kill=N` | `serve_journal_kill` | abort the process mid-append of the Nth journal record |
/// | `serve-journal-trunc=N` | `serve_journal_trunc` | the Nth journal record is written truncated (torn tail) |
/// | `serve-journal-flip=N` | `serve_journal_flip` | one bit of the Nth journal record is flipped on disk |
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub om_tag_bits: Option<u32>,
    pub om_relabel_storm: Option<u64>,
    pub shadow_page_cap: Option<u64>,
    pub shadow_oom_at: Option<u64>,
    pub treap_degenerate: bool,
    pub worker_spawn_fail_from: Option<u32>,
    pub worker_panic_from: Option<u32>,
    pub panic_at_flush: Option<u64>,
    pub serve_panic_session: Option<u64>,
    pub serve_trunc_frame: Option<u64>,
    pub serve_journal_kill: Option<u64>,
    pub serve_journal_trunc: Option<u64>,
    pub serve_journal_flip: Option<u64>,
}

/// Structured failure of [`FaultPlan::parse`]: the spec token that could not
/// be understood, plus why. The CLI surfaces this as a usage error (exit
/// code 2); `stint-serve` answers the session with the `Usage` status. The
/// token is carried verbatim so the caller's diagnostic can point at exactly
/// the part of `STINT_FAULTS`/`--fault-plan` that was wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultParseError {
    /// The offending `key=value` (or bare flag) token, verbatim.
    pub token: String,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec token {:?}: {}", self.token, self.reason)
    }
}

impl std::error::Error for FaultParseError {}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// True if this plan injects at least one fault.
    pub fn injects_anything(&self) -> bool {
        *self
            != FaultPlan {
                seed: self.seed,
                ..FaultPlan::default()
            }
    }

    /// Deterministic per-site jitter in `0..period` derived from the seed,
    /// so the same plan fires its scheduled faults at the same points while
    /// different seeds shift the phase.
    pub fn jitter(&self, salt: u64, period: u64) -> u64 {
        if period == 0 {
            0
        } else {
            splitmix64(self.seed ^ salt) % period
        }
    }

    /// Parse a `key=value,flag,...` spec. Unknown keys, missing values and
    /// out-of-range numbers come back as a structured [`FaultParseError`]
    /// naming the offending token (surfaced as CLI usage errors / the serve
    /// `Usage` status) — a malformed spec must never panic or abort.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultParseError> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let err = |reason: String| FaultParseError {
                token: part.to_string(),
                reason,
            };
            let (key, val) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (part, None),
            };
            let num = |what: &str| -> Result<u64, FaultParseError> {
                val.ok_or_else(|| err(format!("fault {what:?} needs a value (e.g. {what}=4)")))?
                    .parse::<u64>()
                    .map_err(|_| err("value must be a non-negative integer".into()))
            };
            match key {
                "seed" => plan.seed = num("seed")?,
                "om-tags" => {
                    let bits = num("om-tags")?;
                    if !(4..=64).contains(&bits) {
                        return Err(err("bits must be in 4..=64".into()));
                    }
                    plan.om_tag_bits = Some(bits as u32);
                }
                "om-storm" => {
                    let n = num("om-storm")?;
                    if n == 0 {
                        return Err(err("period must be at least 1".into()));
                    }
                    plan.om_relabel_storm = Some(n);
                }
                "shadow-pages" => plan.shadow_page_cap = Some(num("shadow-pages")?),
                "shadow-oom-at" => plan.shadow_oom_at = Some(num("shadow-oom-at")?),
                "treap-degenerate" => plan.treap_degenerate = true,
                "worker-spawn-fail" => {
                    plan.worker_spawn_fail_from = Some(num("worker-spawn-fail")? as u32)
                }
                "worker-panic" => plan.worker_panic_from = Some(num("worker-panic")? as u32),
                "panic-at-flush" => plan.panic_at_flush = Some(num("panic-at-flush")?),
                "serve-panic-session" => {
                    let n = num("serve-panic-session")?;
                    if n == 0 {
                        return Err(err("period must be at least 1".into()));
                    }
                    plan.serve_panic_session = Some(n);
                }
                "serve-trunc-frame" => {
                    let n = num("serve-trunc-frame")?;
                    if n == 0 {
                        return Err(err("period must be at least 1".into()));
                    }
                    plan.serve_trunc_frame = Some(n);
                }
                "serve-journal-kill" => {
                    let n = num("serve-journal-kill")?;
                    if n == 0 {
                        return Err(err("record number must be at least 1".into()));
                    }
                    plan.serve_journal_kill = Some(n);
                }
                "serve-journal-trunc" => {
                    let n = num("serve-journal-trunc")?;
                    if n == 0 {
                        return Err(err("record number must be at least 1".into()));
                    }
                    plan.serve_journal_trunc = Some(n);
                }
                "serve-journal-flip" => {
                    let n = num("serve-journal-flip")?;
                    if n == 0 {
                        return Err(err("record number must be at least 1".into()));
                    }
                    plan.serve_journal_flip = Some(n);
                }
                _ => return Err(err("unknown fault".into())),
            }
        }
        Ok(plan)
    }
}

/// Fast gate: true only while a plan is installed. One relaxed atomic load —
/// this is the entire disabled-path cost of the fault layer.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

// Fault events surfaced into the observability stream so a trace of a
// fault-injected run shows where the plan actually bit.
static OBS_PLANS_INSTALLED: stint_obs::Counter = stint_obs::Counter::new("faults.plans_installed");
static OBS_ERRORS_RAISED: stint_obs::Counter = stint_obs::Counter::new("faults.errors_raised");

/// True if a fault plan is currently installed.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

fn plan_slot() -> std::sync::MutexGuard<'static, Option<FaultPlan>> {
    PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Install `plan` process-wide. Structures sample their knobs at
/// construction, so install a plan *before* building the run it should
/// affect.
pub fn install(plan: FaultPlan) {
    OBS_PLANS_INSTALLED.incr();
    *plan_slot() = Some(plan);
    ACTIVE.store(true, Ordering::Release);
}

/// Remove any installed plan (back to the zero-cost disabled state).
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *plan_slot() = None;
}

/// The currently installed plan, if any.
pub fn current() -> Option<FaultPlan> {
    if !is_active() {
        return None;
    }
    plan_slot().clone()
}

/// Environment variable consulted by [`install_from_env`].
pub const ENV_VAR: &str = "STINT_FAULTS";

/// Install a plan from the `STINT_FAULTS` environment variable, if set.
/// Returns whether a plan was installed; a malformed spec is an error.
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan = FaultPlan::parse(&spec).map_err(|e| format!("{ENV_VAR}={spec:?}: {e}"))?;
            install(plan);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// RAII guard for tests: installs a plan on construction and restores the
/// previous global state on drop (including panics), so fault-injected test
/// cases cannot leak their plan into later cases.
pub struct ScopedPlan {
    previous: Option<FaultPlan>,
}

impl ScopedPlan {
    pub fn install(plan: FaultPlan) -> ScopedPlan {
        let previous = current();
        install(plan);
        ScopedPlan { previous }
    }
}

impl Drop for ScopedPlan {
    fn drop(&mut self) {
        match self.previous.take() {
            Some(p) => install(p),
            None => clear(),
        }
    }
}

// ---------------------------------------------------------------------------
// Construction-time sampling helpers. Each returns the disabled default with
// one relaxed load when no plan is installed; consumers call these when a
// structure is built and keep plain fields thereafter.
// ---------------------------------------------------------------------------

/// Narrowed OM tag universe (bits), if injected.
pub fn om_tag_bits() -> Option<u32> {
    current().and_then(|p| p.om_tag_bits)
}

/// Forced OM relabel period (a relabel storm fires every ~N inserts), plus a
/// seed-derived phase offset, if injected.
pub fn om_relabel_storm() -> Option<(u64, u64)> {
    let p = current()?;
    let period = p.om_relabel_storm?;
    Some((period, p.jitter(0x6F6D_5354_4F52_4D00, period)))
}

/// Shadow page/chunk allocation cap, if injected.
pub fn shadow_page_cap() -> Option<u64> {
    current().and_then(|p| p.shadow_page_cap)
}

/// Index of the shadow page/chunk allocation that should fail (simulated
/// OOM), if injected. Jittered by ±`seed % 3` so different seeds fail
/// different allocations.
pub fn shadow_oom_at() -> Option<u64> {
    let p = current()?;
    let n = p.shadow_oom_at?;
    Some(n + p.jitter(0x5348_4144_4F4F_4D00, 3))
}

/// True if treaps should draw worst-case (monotone) priorities.
pub fn treap_degenerate() -> bool {
    current().is_some_and(|p| p.treap_degenerate)
}

/// True if spawning worker `index` should fail.
pub fn worker_spawn_fails(index: usize) -> bool {
    current()
        .and_then(|p| p.worker_spawn_fail_from)
        .is_some_and(|from| index >= from as usize)
}

/// True if worker `index` should panic at startup.
pub fn worker_panics(index: usize) -> bool {
    current()
        .and_then(|p| p.worker_panic_from)
        .is_some_and(|from| index >= from as usize)
}

/// Number of strand flushes after which an injected panic fires, if any.
pub fn panic_at_flush() -> Option<u64> {
    current().and_then(|p| p.panic_at_flush)
}

/// Serve-path chaos: period `N` such that every ~Nth session should panic
/// mid-flight (sampled by `stint-serve` when a session starts), if injected.
pub fn serve_panic_session() -> Option<u64> {
    current().and_then(|p| p.serve_panic_session)
}

/// Serve-path chaos: period `N` such that every ~Nth response frame should
/// be truncated on the wire, if injected.
pub fn serve_trunc_frame() -> Option<u64> {
    current().and_then(|p| p.serve_trunc_frame)
}

/// Journal chaos: record number `N` at which the writer should abort the
/// whole process mid-append (a simulated crash leaving a torn tail), if
/// injected.
pub fn serve_journal_kill() -> Option<u64> {
    current().and_then(|p| p.serve_journal_kill)
}

/// Journal chaos: record number `N` that should be written truncated (the
/// journal then stops appending — a torn tail), if injected.
pub fn serve_journal_trunc() -> Option<u64> {
    current().and_then(|p| p.serve_journal_trunc)
}

/// Journal chaos: record number `N` in which one bit should be flipped on
/// disk (the journal then stops appending), if injected.
pub fn serve_journal_flip() -> Option<u64> {
    current().and_then(|p| p.serve_journal_flip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The plan is process-global; tests that install one serialize here.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static M: OnceLock<Mutex<()>> = OnceLock::new();
        M.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse(
            "seed=7, om-tags=16, om-storm=8, shadow-pages=4, shadow-oom-at=9, \
             treap-degenerate, worker-spawn-fail=2, worker-panic=3, panic-at-flush=100, \
             serve-panic-session=50, serve-trunc-frame=9, serve-journal-kill=11, \
             serve-journal-trunc=12, serve-journal-flip=13",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.om_tag_bits, Some(16));
        assert_eq!(p.om_relabel_storm, Some(8));
        assert_eq!(p.shadow_page_cap, Some(4));
        assert_eq!(p.shadow_oom_at, Some(9));
        assert!(p.treap_degenerate);
        assert_eq!(p.worker_spawn_fail_from, Some(2));
        assert_eq!(p.worker_panic_from, Some(3));
        assert_eq!(p.panic_at_flush, Some(100));
        assert_eq!(p.serve_panic_session, Some(50));
        assert_eq!(p.serve_trunc_frame, Some(9));
        assert_eq!(p.serve_journal_kill, Some(11));
        assert_eq!(p.serve_journal_trunc, Some(12));
        assert_eq!(p.serve_journal_flip, Some(13));
        assert!(p.injects_anything());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("om-tags").is_err());
        assert!(FaultPlan::parse("om-tags=3").is_err());
        assert!(FaultPlan::parse("om-tags=65").is_err());
        assert!(FaultPlan::parse("om-storm=0").is_err());
        assert!(FaultPlan::parse("shadow-pages=lots").is_err());
        assert!(FaultPlan::parse("frobnicate").is_err());
        assert!(FaultPlan::parse("serve-panic-session=0").is_err());
        assert!(FaultPlan::parse("serve-journal-kill=0").is_err());
        assert!(FaultPlan::parse("serve-journal-flip=never").is_err());
        assert!(!FaultPlan::parse("").unwrap().injects_anything());
        assert!(!FaultPlan::parse("seed=9").unwrap().injects_anything());
    }

    /// Satellite: a malformed spec comes back as a *structured* error naming
    /// the offending token verbatim — the CLI maps it to exit 2 and the
    /// serve daemon to the `Usage` status, and neither ever sees a panic.
    #[test]
    fn parse_errors_carry_the_offending_token() {
        let cases = [
            ("om-tags=16,frobnicate=1,seed=3", "frobnicate=1"),
            ("om-storm", "om-storm"),
            ("shadow-pages=lots", "shadow-pages=lots"),
            ("om-tags=3", "om-tags=3"),
            (" serve-trunc-frame=0 ,seed=1", "serve-trunc-frame=0"),
        ];
        for (spec, token) in cases {
            let e = FaultPlan::parse(spec).expect_err(spec);
            assert_eq!(e.token, token, "spec {spec:?}");
            assert!(!e.reason.is_empty(), "spec {spec:?}");
            let shown = e.to_string();
            assert!(
                shown.contains(token),
                "display must name the token: {shown}"
            );
        }
        // A valid spec is unaffected by the error plumbing.
        assert!(FaultPlan::parse("serve-panic-session=7").is_ok());
    }

    #[test]
    fn install_and_scoped_restore() {
        let _g = global_lock();
        assert!(!is_active());
        assert_eq!(om_tag_bits(), None);
        {
            let _s = ScopedPlan::install(FaultPlan {
                om_tag_bits: Some(12),
                ..FaultPlan::default()
            });
            assert!(is_active());
            assert_eq!(om_tag_bits(), Some(12));
            {
                let _inner = ScopedPlan::install(FaultPlan {
                    treap_degenerate: true,
                    ..FaultPlan::default()
                });
                assert!(treap_degenerate());
                assert_eq!(om_tag_bits(), None);
            }
            assert_eq!(om_tag_bits(), Some(12));
            assert!(!treap_degenerate());
        }
        assert!(!is_active());
    }

    #[test]
    fn worker_fault_predicates_use_from_semantics() {
        let _g = global_lock();
        let _s = ScopedPlan::install(FaultPlan {
            worker_spawn_fail_from: Some(2),
            worker_panic_from: Some(1),
            ..FaultPlan::default()
        });
        assert!(!worker_spawn_fails(0));
        assert!(!worker_spawn_fails(1));
        assert!(worker_spawn_fails(2));
        assert!(worker_spawn_fails(5));
        assert!(!worker_panics(0));
        assert!(worker_panics(1));
    }

    #[test]
    fn storm_jitter_is_deterministic_and_seed_dependent() {
        let _g = global_lock();
        let plan = |seed| FaultPlan {
            seed,
            om_relabel_storm: Some(64),
            ..FaultPlan::default()
        };
        let _s = ScopedPlan::install(plan(1));
        let a = om_relabel_storm().unwrap();
        let b = om_relabel_storm().unwrap();
        assert_eq!(a, b, "same plan, same phase");
        assert_eq!(a.0, 64);
        assert!(a.1 < 64);
        let _s2 = ScopedPlan::install(plan(2));
        let c = om_relabel_storm().unwrap();
        // Not guaranteed distinct for every pair of seeds, but these two are.
        assert_ne!(a.1, c.1, "different seed should shift the phase");
    }

    #[test]
    fn detector_error_display_and_exit_codes() {
        let e = DetectorError::ResourceExhausted {
            resource: Resource::ShadowPages,
            limit: 4,
            at_word: Some(0x100),
        };
        let s = e.to_string();
        assert!(s.contains("shadow memory"), "{s}");
        assert!(s.contains("0x400"), "{s}");
        assert!(s.contains("sound up to that point"), "{s}");
        assert_eq!(e.exit_code(), 3);
        let p = DetectorError::Poisoned {
            detail: "boom".into(),
        };
        assert_eq!(p.exit_code(), 4);
        assert!(p.to_string().contains("boom"));
    }

    #[test]
    fn raise_round_trips_through_panic() {
        let e = DetectorError::ResourceExhausted {
            resource: Resource::OmTags,
            limit: 64,
            at_word: None,
        };
        let e2 = e.clone();
        let caught = std::panic::catch_unwind(move || e2.raise()).unwrap_err();
        assert_eq!(DetectorError::from_panic(caught), e);
        let plain = std::panic::catch_unwind(|| panic!("plain {}", 42)).unwrap_err();
        match DetectorError::from_panic(plain) {
            DetectorError::Poisoned { detail } => assert_eq!(detail, "plain 42"),
            other => panic!("expected Poisoned, got {other:?}"),
        }
    }
}
