//! Allocator integration: freeing a region must clear its access history in
//! every detector variant, so that heap reuse across logically parallel
//! strands does not produce false races — while races on genuinely live
//! memory are still caught.

use stint::{detect, Cilk, CilkProgram, Variant};

const VARIANTS: [Variant; 5] = [
    Variant::Vanilla,
    Variant::Compiler,
    Variant::CompRts,
    Variant::Stint,
    Variant::StintFlat,
];

/// Child writes a "heap block" and frees it; the parallel continuation
/// reuses the same addresses. Without `free` this is a false race.
struct ReuseAfterFree {
    do_free: bool,
}
impl CilkProgram for ReuseAfterFree {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let do_free = self.do_free;
        ctx.spawn(move |c| {
            c.store_range(0x1000, 256);
            c.load_range(0x1000, 256);
            if do_free {
                c.free(0x1000, 256);
            }
        });
        // "Allocator returns the same block" to the parallel continuation.
        ctx.store_range(0x1000, 256);
        ctx.sync();
    }
}

#[test]
fn freed_region_does_not_race() {
    for v in VARIANTS {
        let o = detect(&mut ReuseAfterFree { do_free: true }, v);
        assert!(
            o.report.is_race_free(),
            "{v}: false race on reused freed memory"
        );
    }
}

#[test]
fn same_program_without_free_does_race() {
    for v in VARIANTS {
        let o = detect(&mut ReuseAfterFree { do_free: false }, v);
        assert!(!o.report.is_race_free(), "{v}: real race missed");
    }
}

/// The strand's *own* accesses before the free must still be checked: the
/// child read the region while a parallel sibling wrote it; the later free
/// must not suppress that report.
struct FreeAfterRace;
impl CilkProgram for FreeAfterRace {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        ctx.spawn(|c| c.store_range(0x2000, 64));
        ctx.spawn(|c| {
            c.load_range(0x2000, 64);
            c.free(0x2000, 64);
        });
        ctx.sync();
    }
}

#[test]
fn free_does_not_suppress_prior_race() {
    for v in VARIANTS {
        let o = detect(&mut FreeAfterRace, v);
        assert!(!o.report.is_race_free(), "{v}: race suppressed by free");
        assert_eq!(
            o.report.racy_words(),
            (0x800..0x810).collect::<Vec<u64>>(),
            "{v}"
        );
    }
}

/// After a free, fresh accesses to the recycled region behave like accesses
/// to untouched memory (serial reuse then a genuine new race still reported).
struct FreshLifecycle;
impl CilkProgram for FreshLifecycle {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        // Generation 1: clean parallel use of disjoint halves, then free.
        ctx.spawn(|c| c.store_range(0x3000, 128));
        ctx.store_range(0x3080, 128);
        ctx.sync();
        ctx.free(0x3000, 256);
        // Generation 2: a real race in the recycled block.
        ctx.spawn(|c| c.store_range(0x3000, 8));
        ctx.load_range(0x3004, 8);
        ctx.sync();
    }
}

#[test]
fn recycled_region_detects_new_races_only() {
    for v in VARIANTS {
        let o = detect(&mut FreshLifecycle, v);
        assert_eq!(o.report.racy_words(), vec![0xC01], "{v}");
    }
}
