//! End-to-end differential test of the whole detection pipeline.
//!
//! Random fork-join programs (dense address spaces ⇒ plenty of real races)
//! are executed under all five detector variants; each must report exactly
//! the set of racy words computed by the brute-force all-pairs oracle in
//! `stint-spdag`. This exercises, in one sweep: the executor's strand
//! management, SP-Order maintenance, the per-word protocol, the bit-shadow
//! coalescer and both interval stores.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stint::{detect, Cilk, CilkProgram, Variant};
use stint_spdag::{random_func, simulate, Func, GenCfg, Stmt};

/// Interpret a `stint-spdag` AST program against the production `Cilk` trait.
struct AstProgram<'a>(&'a Func);

fn walk<C: Cilk>(f: &Func, ctx: &mut C) {
    for stmt in &f.0 {
        match stmt {
            Stmt::Compute(accs) => {
                for a in accs {
                    let addr = (a.word * 4) as usize;
                    let bytes = (a.len * 4) as usize;
                    match (a.write, a.coalesced) {
                        (true, true) => ctx.store_range(addr, bytes),
                        (true, false) => ctx.store(addr, bytes),
                        (false, true) => ctx.load_range(addr, bytes),
                        (false, false) => ctx.load(addr, bytes),
                    }
                }
            }
            Stmt::Spawn(g) => ctx.spawn(|c| walk(g, c)),
            Stmt::Sync => ctx.sync(),
            Stmt::Call(g) => ctx.call(|c| walk(g, c)),
        }
    }
}

impl CilkProgram for AstProgram<'_> {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        walk(self.0, ctx);
    }
}

const VARIANTS: [Variant; 5] = [
    Variant::Vanilla,
    Variant::Compiler,
    Variant::CompRts,
    Variant::Stint,
    Variant::StintFlat,
];

fn check_program(f: &Func) {
    let expected = simulate(f).racy_words();
    for v in VARIANTS {
        let got = detect(&mut AstProgram(f), v).report.racy_words();
        assert_eq!(
            got, expected,
            "{v} disagrees with the all-pairs oracle on program {f:?}"
        );
    }
}

fn sweep(seed: u64, rounds: usize, cfg: &GenCfg) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut racy = 0usize;
    for _ in 0..rounds {
        let f = random_func(&mut rng, cfg);
        let sim = simulate(&f);
        if sim.strand_count() > 300 {
            continue;
        }
        if !sim.racy_words().is_empty() {
            racy += 1;
        }
        check_program(&f);
    }
    assert!(
        racy > rounds / 10,
        "generator produced too few racy programs ({racy}/{rounds}) — test is too weak"
    );
}

#[test]
fn dense_random_programs_match_oracle() {
    sweep(
        0xD15EA5E,
        200,
        &GenCfg {
            word_space: 48,
            max_len: 12,
            ..GenCfg::default()
        },
    );
}

#[test]
fn wide_random_programs_match_oracle() {
    sweep(
        0xFACADE,
        150,
        &GenCfg {
            max_depth: 2,
            max_stmts: 10,
            p_spawn: 0.45,
            p_sync: 0.2,
            word_space: 32,
            max_len: 16,
            ..GenCfg::default()
        },
    );
}

#[test]
fn deep_random_programs_match_oracle() {
    sweep(
        0xBADC0DE,
        150,
        &GenCfg {
            max_depth: 7,
            max_stmts: 4,
            p_spawn: 0.5,
            p_sync: 0.25,
            word_space: 64,
            max_len: 24,
            ..GenCfg::default()
        },
    );
}

#[test]
fn mostly_reads_programs_match_oracle() {
    sweep(
        0x5EEDED,
        150,
        &GenCfg {
            p_write: 0.12,
            word_space: 40,
            max_len: 20,
            ..GenCfg::default()
        },
    );
}

#[test]
fn mostly_writes_programs_match_oracle() {
    sweep(
        0x33C0DE,
        150,
        &GenCfg {
            p_write: 0.9,
            word_space: 40,
            max_len: 20,
            ..GenCfg::default()
        },
    );
}
