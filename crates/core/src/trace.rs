//! Trace recording and replay.
//!
//! A [`TraceRecorder`] captures the full instrumentation stream of an
//! execution — every hook with its strand, plus strand boundaries — into a
//! compact [`Trace`]. [`replay`] then feeds a trace into any detector
//! without re-executing the program.
//!
//! This serves two purposes:
//!
//! * **benchmarking**: replaying the same trace into different detectors
//!   measures pure detection cost with the program's own work excluded and
//!   identical access streams guaranteed (used by the `replay` bench — a
//!   cleaner instrument than the paper's Figure 7 timers);
//! * **debugging/auditing**: a trace is a serializable witness of what the
//!   detector saw.

use crate::Detector;
use stint_sporder::{Reachability, StrandId};

/// Magic line of the v1 text trace format.
pub const MAGIC_V1: &str = "STINT-TRACE v1";

/// Which on-disk trace encoding a byte prefix announces. The dispatch seam
/// for framed ingest: `stint-serve` sniffs the head of a wire payload to
/// choose between the in-memory v1 parser and the chunk-streaming v2
/// reader, without consuming the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMagic {
    /// `STINT-TRACE v1` — text format, parsed fully into memory.
    V1,
    /// `STINT-TRACE v2` — compressed chunked format, streamable.
    V2,
    /// Anything else, including prefixes too short to decide. Feeding it to
    /// a loader yields a structured corrupt-trace error, never a panic.
    Unknown,
}

/// Classify the head of a (possibly partial) trace byte stream.
pub fn sniff_magic(head: &[u8]) -> TraceMagic {
    if head.starts_with(crate::ctrace::MAGIC_V2.as_bytes()) {
        TraceMagic::V2
    } else if head.starts_with(MAGIC_V1.as_bytes()) {
        TraceMagic::V1
    } else {
        TraceMagic::Unknown
    }
}

/// One recorded instrumentation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    Load,
    Store,
    LoadRange,
    StoreRange,
    Free,
    StrandEnd,
}

/// A recorded event: operation, strand, and byte range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub op: TraceOp,
    pub strand: StrandId,
    pub addr: usize,
    pub bytes: usize,
}

/// A captured instrumentation stream.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

impl Trace {
    pub fn len(&self) -> usize {
        self.events.len()
    }
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
    /// Total bytes covered by access events (with multiplicity).
    pub fn access_bytes(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| !matches!(e.op, TraceOp::Free | TraceOp::StrandEnd))
            .map(|e| e.bytes as u64)
            .sum()
    }
}

/// Detector that records instead of detecting.
#[derive(Default)]
pub struct TraceRecorder {
    pub trace: Trace,
}

impl TraceRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, op: TraceOp, strand: StrandId, addr: usize, bytes: usize) {
        self.trace.events.push(TraceEvent {
            op,
            strand,
            addr,
            bytes,
        });
    }
}

impl<R: Reachability> Detector<R> for TraceRecorder {
    fn load(&mut self, s: StrandId, addr: usize, bytes: usize, _: &R) {
        self.push(TraceOp::Load, s, addr, bytes);
    }
    fn store(&mut self, s: StrandId, addr: usize, bytes: usize, _: &R) {
        self.push(TraceOp::Store, s, addr, bytes);
    }
    fn load_range(&mut self, s: StrandId, addr: usize, bytes: usize, _: &R) {
        self.push(TraceOp::LoadRange, s, addr, bytes);
    }
    fn store_range(&mut self, s: StrandId, addr: usize, bytes: usize, _: &R) {
        self.push(TraceOp::StoreRange, s, addr, bytes);
    }
    fn free(&mut self, s: StrandId, addr: usize, bytes: usize, _: &R) {
        self.push(TraceOp::Free, s, addr, bytes);
    }
    fn strand_end(&mut self, s: StrandId, _: &R) {
        self.push(TraceOp::StrandEnd, s, 0, 0);
    }
}

/// Record the instrumentation stream of a fork-join program together with
/// the reachability structure its strands refer to.
pub fn record<P: crate::CilkProgram>(p: &mut P) -> (Trace, stint_sporder::SpOrder) {
    let (ex, _) = crate::run_with_detector(p, TraceRecorder::new());
    let reach = ex.reach;
    let trace = ex.det.trace;
    (trace, reach)
}

/// Feed a recorded trace into a detector, returning it.
pub fn replay<R: Reachability, D: Detector<R>>(trace: &Trace, reach: &R, mut det: D) -> D {
    let mut last = StrandId(0);
    for e in &trace.events {
        last = e.strand;
        match e.op {
            TraceOp::Load => det.load(e.strand, e.addr, e.bytes, reach),
            TraceOp::Store => det.store(e.strand, e.addr, e.bytes, reach),
            TraceOp::LoadRange => det.load_range(e.strand, e.addr, e.bytes, reach),
            TraceOp::StoreRange => det.store_range(e.strand, e.addr, e.bytes, reach),
            TraceOp::Free => det.free(e.strand, e.addr, e.bytes, reach),
            TraceOp::StrandEnd => det.strand_end(e.strand, reach),
        }
    }
    det.finish(last, reach);
    det
}

/// A self-contained, persistable trace: the instrumentation stream plus a
/// frozen snapshot of the reachability relation its strand ids refer to.
/// Saved traces can be replayed in a different process (`stint-cli trace`).
///
/// ```
/// use stint::{Cilk, CilkProgram, PortableTrace, RaceReport, StintDetector};
///
/// struct Racy;
/// impl CilkProgram for Racy {
///     fn run<C: Cilk>(&mut self, ctx: &mut C) {
///         ctx.spawn(|c| c.store(0x40, 8));
///         ctx.store(0x40, 8);
///         ctx.sync();
///     }
/// }
///
/// let trace = PortableTrace::record(&mut Racy);
/// let mut text = Vec::new();
/// trace.save(&mut text).unwrap();                  // serialize…
/// let back = PortableTrace::load(&text[..]).unwrap(); // …and restore
/// let det = back.replay(StintDetector::new(RaceReport::default()));
/// assert!(!det.report.is_race_free());
/// ```
#[derive(Clone, Debug)]
pub struct PortableTrace {
    pub trace: Trace,
    pub reach: stint_sporder::FrozenReach,
}

impl PortableTrace {
    /// Record a fork-join program into a portable trace.
    pub fn record<P: crate::CilkProgram>(p: &mut P) -> PortableTrace {
        let (trace, reach) = record(p);
        PortableTrace {
            trace,
            reach: reach.freeze(),
        }
    }

    /// Replay into a detector.
    pub fn replay<D: Detector<stint_sporder::FrozenReach>>(&self, det: D) -> D {
        replay(&self.trace, &self.reach, det)
    }

    /// Check that the trace is internally consistent: every event's strand
    /// exists in the frozen reachability snapshot and no event's byte range
    /// overflows the address space. [`PortableTrace::load`] checks syntax
    /// only; a bit flip inside a strand or length field still parses, and
    /// replaying it would index out of bounds — callers that detect from
    /// untrusted files run this first.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.reach.strand_count();
        for (i, e) in self.trace.events.iter().enumerate() {
            if e.strand.index() >= n {
                return Err(format!(
                    "event {i}: strand {} out of range (trace has {n} strands)",
                    e.strand.0
                ));
            }
            // `word_range` rounds the end up via `addr + bytes + 3`, so the
            // whole rounded sum must fit.
            if e.addr
                .checked_add(e.bytes)
                .and_then(|s| s.checked_add(3))
                .is_none()
            {
                return Err(format!(
                    "event {i}: byte range {:#x}+{} overflows the address space",
                    e.addr, e.bytes
                ));
            }
        }
        Ok(())
    }

    /// Serialize to the simple line-oriented `STINT-TRACE v1` text format.
    /// Rank lines carry an optional third column — the strand's spawn parent
    /// (`-` for the root) — when the snapshot has lineage; older readers that
    /// only split off two fields still parse the two ranks.
    pub fn save<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "STINT-TRACE v1")?;
        writeln!(w, "strands {}", self.reach.strand_count())?;
        let parents = self.reach.parents();
        for (i, (e, h)) in self.reach.ranks().enumerate() {
            match parents.map(|p| p[i]) {
                Some(stint_sporder::NO_PARENT) => writeln!(w, "{e} {h} -")?,
                Some(p) => writeln!(w, "{e} {h} {p}")?,
                None => writeln!(w, "{e} {h}")?,
            }
        }
        writeln!(w, "events {}", self.trace.events.len())?;
        for ev in &self.trace.events {
            let op = match ev.op {
                TraceOp::Load => "l",
                TraceOp::Store => "s",
                TraceOp::LoadRange => "L",
                TraceOp::StoreRange => "S",
                TraceOp::Free => "f",
                TraceOp::StrandEnd => "e",
            };
            writeln!(w, "{op} {} {:#x} {}", ev.strand.0, ev.addr, ev.bytes)?;
        }
        Ok(())
    }

    /// Serialize to the compressed chunked `STINT-TRACE v2` binary format
    /// (see [`crate::ctrace`]) with at most `chunk_events` decoded events
    /// per chunk.
    pub fn save_compressed<W: std::io::Write>(
        &self,
        w: W,
        chunk_events: usize,
    ) -> std::io::Result<crate::ctrace::CompressStats> {
        crate::ctrace::save_compressed(self, w, chunk_events)
    }

    /// Parse either trace format, dispatching on the magic line: the v1
    /// text format or the compressed chunked v2 format.
    pub fn load_any<R: std::io::BufRead>(mut r: R) -> std::io::Result<PortableTrace> {
        use std::io::{Error, ErrorKind};
        let mut magic = String::new();
        r.read_line(&mut magic)?;
        match magic.trim_end() {
            MAGIC_V1 => Self::load_v1_after_magic(r),
            crate::ctrace::MAGIC_V2 => {
                let mut reader = crate::ctrace::CompressedTraceReader::open_after_magic(r)?;
                crate::ctrace::load_rest(&mut reader)
            }
            _ => Err(Error::new(
                ErrorKind::InvalidData,
                "bad magic: expected STINT-TRACE v1 or v2",
            )),
        }
    }

    /// Parse the `STINT-TRACE v1` format.
    pub fn load<R: std::io::BufRead>(mut r: R) -> std::io::Result<PortableTrace> {
        use std::io::{Error, ErrorKind};
        let mut magic = String::new();
        r.read_line(&mut magic)?;
        if magic.trim_end() != MAGIC_V1 {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "bad magic: expected STINT-TRACE v1",
            ));
        }
        Self::load_v1_after_magic(r)
    }

    fn load_v1_after_magic<R: std::io::BufRead>(r: R) -> std::io::Result<PortableTrace> {
        use std::io::{Error, ErrorKind};
        let bad = |m: &str| Error::new(ErrorKind::InvalidData, m.to_string());
        let mut lines = r.lines();
        let mut next = move || -> std::io::Result<String> {
            lines.next().ok_or_else(|| bad("unexpected end of trace"))?
        };
        let header = next()?;
        let n: usize = header
            .strip_prefix("strands ")
            .and_then(|x| x.trim().parse().ok())
            .ok_or_else(|| bad("bad strands header"))?;
        let mut eng = Vec::with_capacity(n);
        let mut heb = Vec::with_capacity(n);
        // Optional lineage column: all rank lines carry it or none do.
        let mut parents: Vec<u32> = Vec::new();
        for i in 0..n {
            let line = next()?;
            let mut it = line.split_whitespace();
            let e: u32 = it
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| bad("bad rank line"))?;
            let h: u32 = it
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| bad("bad rank line"))?;
            eng.push(e);
            heb.push(h);
            match it.next() {
                Some(tok) => {
                    if parents.len() != i {
                        return Err(bad("lineage column present on only some rank lines"));
                    }
                    let p: u32 = if tok == "-" {
                        stint_sporder::NO_PARENT
                    } else {
                        tok.parse().map_err(|_| bad("bad parent entry"))?
                    };
                    // Validate here rather than panic in `with_parents`:
                    // trace files are untrusted input.
                    if p != stint_sporder::NO_PARENT && (p as usize >= n || p as usize == i) {
                        return Err(bad("parent entry out of range or self-referential"));
                    }
                    parents.push(p);
                }
                None => {
                    if !parents.is_empty() {
                        return Err(bad("lineage column present on only some rank lines"));
                    }
                }
            }
        }
        let header = next()?;
        let m: usize = header
            .strip_prefix("events ")
            .and_then(|x| x.trim().parse().ok())
            .ok_or_else(|| bad("bad events header"))?;
        let mut events = Vec::with_capacity(m);
        for _ in 0..m {
            let line = next()?;
            let mut it = line.split_whitespace();
            let op = match it.next().ok_or_else(|| bad("bad event"))? {
                "l" => TraceOp::Load,
                "s" => TraceOp::Store,
                "L" => TraceOp::LoadRange,
                "S" => TraceOp::StoreRange,
                "f" => TraceOp::Free,
                "e" => TraceOp::StrandEnd,
                _ => return Err(bad("unknown event op")),
            };
            let strand: u32 = it
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| bad("bad event strand"))?;
            let addr_s = it.next().ok_or_else(|| bad("bad event addr"))?;
            let addr = usize::from_str_radix(addr_s.trim_start_matches("0x"), 16)
                .map_err(|_| bad("bad event addr"))?;
            let bytes: usize = it
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| bad("bad event bytes"))?;
            events.push(TraceEvent {
                op,
                strand: StrandId(strand),
                addr,
                bytes,
            });
        }
        let mut reach = stint_sporder::FrozenReach::from_ranks(eng, heb);
        if !parents.is_empty() {
            reach = reach.with_parents(parents);
        }
        Ok(PortableTrace {
            trace: Trace { events },
            reach,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cilk, CilkProgram, RaceReport, StintDetector, VanillaDetector};

    struct Racy;
    impl CilkProgram for Racy {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| {
                c.store_range(0x100, 64);
                c.free(0x140, 8);
            });
            ctx.load(0x120, 8);
            ctx.sync();
            ctx.store(0x100, 4);
        }
    }

    #[test]
    fn record_captures_all_events() {
        let (trace, _reach) = record(&mut Racy);
        let ops: Vec<TraceOp> = trace.events.iter().map(|e| e.op).collect();
        assert!(ops.contains(&TraceOp::StoreRange));
        assert!(ops.contains(&TraceOp::Load));
        assert!(ops.contains(&TraceOp::Free));
        assert!(ops.contains(&TraceOp::Store));
        // Strand boundaries recorded around the spawn/sync points.
        assert!(ops.iter().filter(|o| **o == TraceOp::StrandEnd).count() >= 3);
        assert_eq!(trace.access_bytes(), 64 + 8 + 4);
    }

    #[test]
    fn replay_reproduces_live_detection() {
        let (trace, reach) = record(&mut Racy);
        let live = crate::detect(&mut Racy, crate::Variant::Stint);
        let replayed = replay(&trace, &reach, StintDetector::new(RaceReport::default()));
        // Racy words are address-relative here (fixed literal addresses), so
        // they must agree exactly.
        assert_eq!(replayed.report.racy_words(), live.report.racy_words());
        assert!(!replayed.report.is_race_free());
        // And the word-level detector agrees too.
        let vr = replay(
            &trace,
            &reach,
            VanillaDetector::new(true, RaceReport::default()),
        );
        assert_eq!(vr.report.racy_words(), replayed.report.racy_words());
    }

    #[test]
    fn portable_trace_roundtrips_and_replays() {
        let pt = PortableTrace::record(&mut Racy);
        let mut buf = Vec::new();
        pt.save(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("STINT-TRACE v1"));
        let back = PortableTrace::load(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.trace.events, pt.trace.events);
        assert_eq!(back.reach, pt.reach);
        // Replaying the loaded trace matches the live run.
        let live = crate::detect(&mut Racy, crate::Variant::Stint);
        let d = back.replay(StintDetector::new(RaceReport::default()));
        assert_eq!(d.report.racy_words(), live.report.racy_words());
    }

    #[test]
    fn portable_trace_rejects_garbage() {
        for bad in [
            "",
            "WRONG MAGIC",
            "STINT-TRACE v1
strands x",
            "STINT-TRACE v1
strands 1
0 0
events 1
? 0 0x0 0",
        ] {
            assert!(
                PortableTrace::load(std::io::BufReader::new(bad.as_bytes())).is_err(),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn v1_lineage_column_roundtrips() {
        let pt = PortableTrace::record(&mut Racy);
        assert!(pt.reach.parents().is_some(), "live recording has lineage");
        let mut buf = Vec::new();
        pt.save(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(
            text.lines().nth(2).unwrap().ends_with(" -"),
            "root row: {text}"
        );
        let back = PortableTrace::load(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.reach.parents(), pt.reach.parents());
    }

    #[test]
    fn v1_legacy_two_column_ranks_still_parse() {
        let legacy = "STINT-TRACE v1\nstrands 2\n0 1\n1 0\nevents 1\ns 0 0x0 4\n";
        let pt = PortableTrace::load(std::io::BufReader::new(legacy.as_bytes())).unwrap();
        assert!(pt.reach.parents().is_none());
        assert_eq!(pt.trace.len(), 1);
        // A mixed lineage column is rejected, as are bad parent entries.
        for bad in [
            "STINT-TRACE v1\nstrands 2\n0 1 -\n1 0\nevents 0\n",
            "STINT-TRACE v1\nstrands 2\n0 1\n1 0 0\nevents 0\n",
            "STINT-TRACE v1\nstrands 2\n0 1 -\n1 0 7\nevents 0\n",
            "STINT-TRACE v1\nstrands 2\n0 1 -\n1 0 1\nevents 0\n",
        ] {
            assert!(
                PortableTrace::load(std::io::BufReader::new(bad.as_bytes())).is_err(),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn replay_is_repeatable() {
        let (trace, reach) = record(&mut Racy);
        let a = replay(&trace, &reach, StintDetector::new(RaceReport::default()));
        let b = replay(&trace, &reach, StintDetector::new(RaceReport::default()));
        assert_eq!(a.report.racy_words(), b.report.racy_words());
        assert_eq!(a.stats.treap.ops, b.stats.treap.ops);
        assert_eq!(a.stats.treap.visited, b.stats.treap.visited);
    }
}
