//! Race provenance: verifiable witnesses attached to race reports.
//!
//! A bare [`crate::Race`] is a *claim*: two strands conflicted on a word
//! range. This module turns the claim into *evidence*. Every detector hook
//! advances a monotone event sequence number that matches the event's index
//! in a recorded [`crate::Trace`] exactly (live detection and trace replay
//! number events identically, because both see one hook call per trace
//! event). From that identity a [`Witness`] records, at detection time:
//!
//! * the **event spans** of both strands — sequential depth-first execution
//!   means each strand occupies one contiguous index range of the event
//!   stream, so `[first, last]` pins where in the trace each access lives
//!   (plus the exact event id of the current access when the detector
//!   checked it synchronously, as the word-granularity detectors do);
//! * the **SP-Order tag evidence**: the pair `(prev <_E cur, prev <_H cur)`
//!   read from the English/Hebrew orders at capture time — the bits
//!   *disagreeing* is the parallelism proof;
//! * the **spawn-tree lineage** of both strands up to their nearest common
//!   SP ancestor — explanatory context for a human ("these strands descend
//!   from the spawn at strand 3"); the rank evidence is the proof.
//!
//! [`WitnessChecker`] re-validates a witness *independently* against the
//! frozen reachability substrate (recomputing the order bits from the rank
//! permutations and the lineage from the parent table) and, when the trace
//! is available, against the event stream itself (the claimed spans must be
//! subranges of the strands' actual spans and must contain a concretely
//! conflicting pair of accesses). A tampered witness — flipped order bit,
//! swapped strand, shifted span — fails the check.
//!
//! Capture is **off by default** and costs one `Option` discriminant check
//! per hook when disabled (the established inertness contract; perfgate's
//! geomean gates enforce it).

use crate::report::{Race, RaceKind};
use crate::trace::{Trace, TraceOp};
use stint_obs::Counter;
use stint_sporder::{FrozenReach, Reachability, StrandId};

static OBS_CAPTURED: Counter = Counter::new("witness.captured");
static OBS_CHECKED: Counter = Counter::new("witness.checked");
static OBS_REJECTED: Counter = Counter::new("witness.rejected");

/// Where one side of a race happened: the strand, its contiguous event-id
/// span in the instrumentation stream, and — when the detector pinpointed
/// it — the exact event id of the access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessEvidence {
    pub strand: StrandId,
    /// First event id the strand executed (at capture time).
    pub first_event: u64,
    /// Last event id the strand executed (at capture time).
    pub last_event: u64,
    /// Exact event id of this side's access, when known. Word-granularity
    /// detectors check at access time and pinpoint the current access;
    /// flush-based detectors and the batch merge carry spans only.
    pub event: Option<u64>,
}

/// Machine-checkable evidence for one [`Race`]. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    pub prev: AccessEvidence,
    pub cur: AccessEvidence,
    /// `prev <_E cur` at capture time (sequential capture always observes
    /// the previously recorded access first, so this is `true` live).
    pub prev_before_eng: bool,
    /// `prev <_H cur` at capture time. Disagreement with the English bit is
    /// the parallelism proof.
    pub prev_before_heb: bool,
    /// `prev.strand`'s spawn-tree chain up to (and including) the nearest
    /// common SP ancestor with `cur.strand`. Empty when the reachability
    /// source carries no lineage.
    pub prev_lineage: Vec<StrandId>,
    /// `cur.strand`'s chain up to the same ancestor.
    pub cur_lineage: Vec<StrandId>,
}

impl Witness {
    /// Build a witness for the pair `(prev, cur)` from a span table and a
    /// reachability source. This is the *merge-time* constructor the batch
    /// detector uses: it is a deterministic function of the pair, the global
    /// span table, and the frozen orders — which is what keeps merged
    /// reports byte-identical across shard counts.
    pub fn from_spans<R: Reachability>(
        reach: &R,
        spans: &EventSpans,
        prev: StrandId,
        cur: StrandId,
    ) -> Witness {
        let (prev_before_eng, prev_before_heb) = reach.order_pair(prev, cur);
        let (prev_lineage, cur_lineage) = lineage_to_common(reach, prev, cur);
        let side = |s: StrandId| {
            let (first_event, last_event) = spans.get(s).unwrap_or((u64::MAX, 0));
            AccessEvidence {
                strand: s,
                first_event,
                last_event,
                event: None,
            }
        };
        OBS_CAPTURED.incr();
        Witness {
            prev: side(prev),
            cur: side(cur),
            prev_before_eng,
            prev_before_heb,
            prev_lineage,
            cur_lineage,
        }
    }

    /// The witness as a single-line JSON object — the race-report-card
    /// encoding (`stint-report-v1`). Every field is numeric or boolean, so
    /// no string escaping is needed; `witness verify` parses this back and
    /// re-runs the checker on it.
    pub fn to_json(&self) -> String {
        let side = |e: &AccessEvidence| {
            format!(
                "{{\"strand\":{},\"first\":{},\"last\":{},\"event\":{}}}",
                e.strand.0,
                e.first_event,
                e.last_event,
                e.event
                    .map(|id| id.to_string())
                    .unwrap_or_else(|| "null".into())
            )
        };
        let chain = |c: &[StrandId]| {
            let ids: Vec<String> = c.iter().map(|s| s.0.to_string()).collect();
            format!("[{}]", ids.join(","))
        };
        format!(
            "{{\"prev\":{},\"cur\":{},\"prev_before_eng\":{},\"prev_before_heb\":{},\
             \"prev_lineage\":{},\"cur_lineage\":{}}}",
            side(&self.prev),
            side(&self.cur),
            self.prev_before_eng,
            self.prev_before_heb,
            chain(&self.prev_lineage),
            chain(&self.cur_lineage),
        )
    }

    /// Compact single-line rendering used on the serve wire and in the batch
    /// report (`order=e+h-` reads "prev before cur in English, not in
    /// Hebrew"; `@id` is the pinpointed current access, when known).
    pub fn render(&self) -> String {
        let side = |e: &AccessEvidence| {
            let mut s = format!("s{}[{},{}]", e.strand.0, e.first_event, e.last_event);
            if let Some(id) = e.event {
                s.push('@');
                s.push_str(&id.to_string());
            }
            s
        };
        let chain = |c: &[StrandId]| {
            if c.is_empty() {
                "-".to_string()
            } else {
                c.iter()
                    .map(|s| s.0.to_string())
                    .collect::<Vec<_>>()
                    .join(">")
            }
        };
        format!(
            "prev={} cur={} order=e{}h{} lineage={}|{}",
            side(&self.prev),
            side(&self.cur),
            if self.prev_before_eng { '+' } else { '-' },
            if self.prev_before_heb { '+' } else { '-' },
            chain(&self.prev_lineage),
            chain(&self.cur_lineage),
        )
    }
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Per-strand contiguous event-id spans `[first, last]` of an
/// instrumentation stream. Built incrementally (one [`EventSpans::note`]
/// per event) or in one pass over a recorded trace.
#[derive(Clone, Debug, Default)]
pub struct EventSpans {
    spans: Vec<(u64, u64)>,
}

impl EventSpans {
    /// One O(n) pass over a recorded trace.
    pub fn from_trace(t: &Trace) -> EventSpans {
        let mut sp = EventSpans::default();
        for (i, e) in t.events.iter().enumerate() {
            sp.note(e.strand, i as u64);
        }
        sp
    }

    /// Record that strand `s` executed event `id`. Ids must be fed in
    /// non-decreasing order per strand.
    #[inline]
    pub fn note(&mut self, s: StrandId, id: u64) {
        let idx = s.index();
        if idx >= self.spans.len() {
            self.spans.resize(idx + 1, (u64::MAX, 0));
        }
        let sp = &mut self.spans[idx];
        if sp.0 == u64::MAX {
            sp.0 = id;
        }
        sp.1 = id;
    }

    /// The strand's `[first, last]` span, if it executed any event.
    pub fn get(&self, s: StrandId) -> Option<(u64, u64)> {
        let sp = *self.spans.get(s.index())?;
        (sp.0 != u64::MAX).then_some(sp)
    }

    /// Heap bytes owned by the table.
    pub fn heap_bytes(&self) -> u64 {
        (self.spans.capacity() * std::mem::size_of::<(u64, u64)>()) as u64
    }
}

/// Live witness-capture state owned by a [`crate::RaceReport`]: the monotone
/// event sequence number (equal to the event's trace index) plus the
/// per-strand span table.
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    seq: u64,
    spans: EventSpans,
    /// The in-flight event, when it is an access: `(strand, event id)`.
    /// Lets a synchronous word check pinpoint the current access; cleared by
    /// control events so flush-time races never claim the wrong event.
    current: Option<(StrandId, u64)>,
}

impl Provenance {
    /// Advance the sequence number for one hook invocation by strand `s`.
    /// `access` is true for load/store/load_range/store_range, false for
    /// free/strand_end.
    #[inline]
    pub fn on_event(&mut self, s: StrandId, access: bool) {
        let id = self.seq;
        self.seq += 1;
        self.spans.note(s, id);
        self.current = if access { Some((s, id)) } else { None };
    }

    /// Events observed so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The per-strand span table accumulated so far.
    pub fn spans(&self) -> &EventSpans {
        &self.spans
    }

    /// Build the witness for a race being recorded right now. The exact
    /// current-access id is attached only when the in-flight event is an
    /// access by `cur` (the word-granularity synchronous-check case).
    pub fn witness<R: Reachability>(&self, reach: &R, prev: StrandId, cur: StrandId) -> Witness {
        let mut w = Witness::from_spans(reach, &self.spans, prev, cur);
        if let Some((s, id)) = self.current {
            if s == cur {
                w.cur.event = Some(id);
            }
        }
        w
    }
}

/// Climb the spawn-tree from `a` and `b` to their nearest common ancestor,
/// returning both chains inclusive of the ancestor. Empty chains when the
/// source carries no lineage (or the chains never meet, which a valid
/// parent table cannot produce).
pub fn lineage_to_common<R: Reachability>(
    reach: &R,
    a: StrandId,
    b: StrandId,
) -> (Vec<StrandId>, Vec<StrandId>) {
    // Hop cap: a well-formed parent table is a forest, but this also runs
    // over tables parsed from untrusted trace files, where a cycle must not
    // hang the process.
    const MAX_HOPS: usize = 1 << 20;
    let chain = |mut s: StrandId| {
        let mut c = vec![s];
        while let Some(p) = reach.parent_of(s) {
            c.push(p);
            s = p;
            if c.len() > MAX_HOPS {
                break;
            }
        }
        c
    };
    let ca = chain(a);
    let cb = chain(b);
    // First element of `ca` that also appears on `cb` is the nearest common
    // ancestor (chains are root-terminated, so they share a suffix).
    let on_b: std::collections::HashSet<StrandId> = cb.iter().copied().collect();
    let Some(pos_a) = ca.iter().position(|s| on_b.contains(s)) else {
        return (Vec::new(), Vec::new());
    };
    let anc = ca[pos_a];
    let pos_b = cb.iter().position(|&s| s == anc).unwrap();
    (ca[..=pos_a].to_vec(), cb[..=pos_b].to_vec())
}

/// Independent re-validation of witnesses against the frozen reachability
/// substrate (always) and the recorded event stream (when provided).
pub struct WitnessChecker<'a> {
    reach: &'a FrozenReach,
    trace: Option<&'a Trace>,
    actual_spans: Option<EventSpans>,
}

impl<'a> WitnessChecker<'a> {
    pub fn new(reach: &'a FrozenReach) -> WitnessChecker<'a> {
        WitnessChecker {
            reach,
            trace: None,
            actual_spans: None,
        }
    }

    /// Also check witnesses against the event stream itself: claimed spans
    /// must be subranges of the strands' actual spans and must contain a
    /// concretely conflicting pair of accesses to the racy words.
    pub fn with_trace(mut self, trace: &'a Trace) -> WitnessChecker<'a> {
        self.actual_spans = Some(EventSpans::from_trace(trace));
        self.trace = Some(trace);
        self
    }

    /// Validate `race`'s witness. `Err` carries a human-readable rejection
    /// reason; a race without a witness is rejected (callers decide whether
    /// witnesses were expected before invoking the checker).
    pub fn check(&self, race: &Race) -> Result<(), String> {
        let w = race
            .witness
            .as_deref()
            .ok_or_else(|| "race carries no witness".to_string())?;
        self.check_witness(w, race).map(|_| ())
    }

    /// Validate a witness against its race, returning the concrete
    /// conflicting event pair `(prev event id, cur event id)` when the trace
    /// is available (`(u64::MAX, u64::MAX)` otherwise).
    pub fn check_witness(&self, w: &Witness, race: &Race) -> Result<(u64, u64), String> {
        OBS_CHECKED.incr();
        self.check_inner(w, race).inspect_err(|_| {
            OBS_REJECTED.incr();
        })
    }

    fn check_inner(&self, w: &Witness, race: &Race) -> Result<(u64, u64), String> {
        let n = self.reach.strand_count() as u32;
        if w.prev.strand.0 >= n || w.cur.strand.0 >= n {
            return Err(format!(
                "witness names strand out of range (trace has {n} strands)"
            ));
        }
        if w.prev.strand != race.prev || w.cur.strand != race.cur {
            return Err(format!(
                "witness strands (s{}, s{}) disagree with the race (s{}, s{})",
                w.prev.strand.0, w.cur.strand.0, race.prev.0, race.cur.0
            ));
        }
        if race.word_lo >= race.word_hi {
            return Err("race covers an empty word range".to_string());
        }
        // 1. Re-derive the order bits from the frozen rank permutations:
        //    captured evidence must match, and the bits must disagree —
        //    agreement would mean the strands are in series, i.e. no race.
        let (eng, heb) = self.reach.order_pair(w.prev.strand, w.cur.strand);
        if (eng, heb) != (w.prev_before_eng, w.prev_before_heb) {
            return Err(format!(
                "order evidence e{}h{} contradicts the frozen orders e{}h{}",
                sign(w.prev_before_eng),
                sign(w.prev_before_heb),
                sign(eng),
                sign(heb)
            ));
        }
        if eng == heb {
            return Err("order bits agree: strands are in series, not parallel".to_string());
        }
        // 2. Spans must be well-formed, and the pinpointed access (if any)
        //    must lie inside its span.
        for (name, e) in [("prev", &w.prev), ("cur", &w.cur)] {
            if e.first_event > e.last_event {
                return Err(format!(
                    "{name} span [{},{}] is empty",
                    e.first_event, e.last_event
                ));
            }
            if let Some(id) = e.event {
                if id < e.first_event || id > e.last_event {
                    return Err(format!("{name} access {id} outside its claimed span"));
                }
            }
        }
        // 3. Lineage must re-derive from the parent table (exact match);
        //    a substrate without lineage admits only empty chains.
        let (pl, cl) = lineage_to_common(self.reach, w.prev.strand, w.cur.strand);
        if pl != w.prev_lineage || cl != w.cur_lineage {
            return Err("lineage chains disagree with the spawn tree".to_string());
        }
        // 4. Against the event stream: claimed spans are subranges of the
        //    strands' actual spans, and each span holds a conflicting access
        //    to the racy words (prev's side checked against the kind's
        //    recorded op, cur's against the current op).
        let (Some(trace), Some(actual)) = (self.trace, &self.actual_spans) else {
            return Ok((u64::MAX, u64::MAX));
        };
        let (prev_writes, cur_writes) = match race.kind {
            RaceKind::WriteWrite => (true, true),
            RaceKind::ReadWrite => (false, true),
            RaceKind::WriteRead => (true, false),
        };
        let pid = self.find_conflict(trace, actual, &w.prev, prev_writes, race, "prev")?;
        let cid = match w.cur.event {
            Some(id) => {
                self.event_conflicts(trace, id, &w.cur, cur_writes, race, "cur")?;
                id
            }
            None => self.find_conflict(trace, actual, &w.cur, cur_writes, race, "cur")?,
        };
        Ok((pid, cid))
    }

    fn find_conflict(
        &self,
        trace: &Trace,
        actual: &EventSpans,
        e: &AccessEvidence,
        writes: bool,
        race: &Race,
        name: &str,
    ) -> Result<u64, String> {
        let (af, al) = actual
            .get(e.strand)
            .ok_or_else(|| format!("{name} strand s{} executed no events", e.strand.0))?;
        if e.first_event < af || e.last_event > al {
            return Err(format!(
                "{name} span [{},{}] escapes strand s{}'s actual span [{af},{al}]",
                e.first_event, e.last_event, e.strand.0
            ));
        }
        for id in e.first_event..=e.last_event {
            if self
                .event_conflicts(trace, id, e, writes, race, name)
                .is_ok()
            {
                return Ok(id);
            }
        }
        Err(format!(
            "{name} span [{},{}] holds no {} overlapping words [{:#x},{:#x})",
            e.first_event,
            e.last_event,
            if writes { "write" } else { "read" },
            race.word_lo,
            race.word_hi
        ))
    }

    fn event_conflicts(
        &self,
        trace: &Trace,
        id: u64,
        e: &AccessEvidence,
        writes: bool,
        race: &Race,
        name: &str,
    ) -> Result<(), String> {
        let ev = trace
            .events
            .get(id as usize)
            .ok_or_else(|| format!("{name} event {id} beyond the trace"))?;
        if ev.strand != e.strand {
            return Err(format!(
                "{name} event {id} belongs to strand s{}, not s{}",
                ev.strand.0, e.strand.0
            ));
        }
        let is_write = match ev.op {
            TraceOp::Store | TraceOp::StoreRange => true,
            TraceOp::Load | TraceOp::LoadRange => false,
            TraceOp::Free | TraceOp::StrandEnd => {
                return Err(format!("{name} event {id} is not a memory access"))
            }
        };
        if is_write != writes {
            return Err(format!(
                "{name} event {id} is a {}, the race kind needs a {}",
                if is_write { "write" } else { "read" },
                if writes { "write" } else { "read" }
            ));
        }
        let (lo, hi) = stint_cilk::word_range(ev.addr, ev.bytes);
        if hi <= race.word_lo || lo >= race.word_hi {
            return Err(format!("{name} event {id} misses the racy words"));
        }
        Ok(())
    }
}

fn sign(b: bool) -> char {
    if b {
        '+'
    } else {
        '-'
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cilk, CilkProgram, PortableTrace};

    struct Racy;
    impl CilkProgram for Racy {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| c.store(0x40, 8));
            ctx.store(0x40, 8);
            ctx.sync();
        }
    }

    fn witnessed_race() -> (PortableTrace, Race) {
        let pt = PortableTrace::record(&mut Racy);
        let det =
            pt.replay(crate::StintDetector::new(crate::RaceReport::default()).with_witnesses(true));
        let race = det.report.races()[0].clone();
        assert!(race.witness.is_some(), "witness capture was enabled");
        (pt, race)
    }

    #[test]
    fn captured_witness_passes_full_check() {
        let (pt, race) = witnessed_race();
        let checker = WitnessChecker::new(&pt.reach).with_trace(&pt.trace);
        let w = race.witness.as_deref().unwrap();
        let (pid, cid) = checker.check_witness(w, &race).unwrap();
        // The concrete pair is real: distinct events by the claimed strands.
        assert_ne!(pid, cid);
        assert_eq!(pt.trace.events[pid as usize].strand, race.prev);
        assert_eq!(pt.trace.events[cid as usize].strand, race.cur);
        // Lineage was captured (the live SpOrder tracks parents).
        assert!(!w.prev_lineage.is_empty());
        assert!(!w.cur_lineage.is_empty());
        assert_eq!(w.prev_lineage.last(), w.cur_lineage.last());
    }

    #[test]
    fn tampered_witnesses_are_rejected() {
        let (pt, race) = witnessed_race();
        let checker = WitnessChecker::new(&pt.reach).with_trace(&pt.trace);
        // Flip an order bit.
        let mut t = race.clone();
        t.witness.as_deref_mut().unwrap().prev_before_heb ^= true;
        assert!(checker.check(&t).is_err());
        // Swap the strands.
        let mut t = race.clone();
        {
            let w = t.witness.as_deref_mut().unwrap();
            std::mem::swap(&mut w.prev.strand, &mut w.cur.strand);
        }
        assert!(checker.check(&t).is_err());
        // Shift the cur span past the strand's actual events.
        let mut t = race.clone();
        {
            let w = t.witness.as_deref_mut().unwrap();
            w.cur.first_event += 1000;
            w.cur.last_event += 1000;
            w.cur.event = None;
        }
        assert!(checker.check(&t).is_err());
        // Point the race at words nobody touched.
        let mut t = race.clone();
        t.word_lo += 0x1000;
        t.word_hi += 0x1000;
        assert!(checker.check(&t).is_err());
        // Drop the witness entirely.
        let mut t = race;
        t.witness = None;
        assert!(checker.check(&t).is_err());
    }

    #[test]
    fn merge_time_constructor_is_deterministic_and_valid() {
        let (pt, race) = witnessed_race();
        let spans = EventSpans::from_trace(&pt.trace);
        let a = Witness::from_spans(&pt.reach, &spans, race.prev, race.cur);
        let b = Witness::from_spans(&pt.reach, &spans, race.prev, race.cur);
        assert_eq!(a, b);
        let checker = WitnessChecker::new(&pt.reach).with_trace(&pt.trace);
        checker.check_witness(&a, &race).unwrap();
        // Render is stable and carries the order evidence.
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("order=e"));
    }

    #[test]
    fn lineage_is_empty_without_parent_table() {
        let (pt, race) = witnessed_race();
        let (e, h): (Vec<u32>, Vec<u32>) = pt.reach.ranks().unzip();
        let bare = stint_sporder::FrozenReach::from_ranks(e, h);
        let (pl, cl) = lineage_to_common(&bare, race.prev, race.cur);
        assert!(pl.is_empty() && cl.is_empty());
        // A witness captured against the bare substrate passes the bare
        // checker (substrate-only; no trace).
        let spans = EventSpans::from_trace(&pt.trace);
        let w = Witness::from_spans(&bare, &spans, race.prev, race.cur);
        WitnessChecker::new(&bare).check_witness(&w, &race).unwrap();
        // But a lineage-carrying witness is rejected by the bare substrate
        // (chains cannot be re-derived) — and vice versa.
        let lw = race.witness.as_deref().unwrap();
        assert!(WitnessChecker::new(&bare).check_witness(lw, &race).is_err());
        assert!(WitnessChecker::new(&pt.reach)
            .check_witness(&w, &race)
            .is_err());
    }
}
