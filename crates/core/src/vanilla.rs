//! The `vanilla` and `compiler` detector variants (Section 5).
//!
//! Both keep the access history in the word-granularity [`WordShadow`] and
//! check/update it *at every hook call* (no runtime coalescing, no strand-end
//! batching). They differ only in what they do with compiler-coalesced hooks:
//!
//! * **vanilla** models the *unmodified* compiler: a coalesced hook is
//!   processed as if the program had been instrumented per access — one
//!   shadow lookup per word, each paying the page-table walk;
//! * **compiler** exploits the coalesced hook: one call into the access
//!   history per range, traversing each shadow page once.

use crate::report::RaceReport;
use crate::stats::DetectorStats;
use crate::word_logic::{
    read_word, read_word_cached, replay_interval, write_word, write_word_cached, WordOp,
};
use crate::{HotPath, ResourceBudget};
use stint_cilk::{word_range, Detector};
use stint_faults::DetectorError;
use stint_shadow::WordShadow;
use stint_sporder::{ReachCache, Reachability, StrandId};

/// Word-granularity, check-at-every-access detector.
pub struct VanillaDetector {
    /// True for the `compiler` variant (exploit coalesced hooks).
    compiler_coalescing: bool,
    shadow: WordShadow,
    hot: HotPath,
    cache: ReachCache,
    /// Injected fault: panic at the Nth strand-end flush (sampled from the
    /// process fault plan at construction time).
    panic_at_flush: Option<u64>,
    pub report: RaceReport,
    pub stats: DetectorStats,
}

impl VanillaDetector {
    pub fn new(compiler_coalescing: bool, report: RaceReport) -> Self {
        VanillaDetector {
            compiler_coalescing,
            shadow: WordShadow::new(),
            hot: HotPath::default(),
            cache: ReachCache::new(),
            panic_at_flush: if stint_faults::is_active() {
                stint_faults::panic_at_flush()
            } else {
                None
            },
            report,
            stats: DetectorStats::default(),
        }
    }

    /// Select which hot-path optimizations to use (default: all on).
    pub fn with_hot_path(mut self, hot: HotPath) -> Self {
        self.hot = hot;
        self
    }

    /// Enable verifiable-witness capture (see [`crate::witness`]).
    pub fn with_witnesses(mut self, on: bool) -> Self {
        self.report.set_witness_capture(on);
        self
    }

    /// Apply resource budgets. On exhaustion the [`WordShadow`] degrades to
    /// an always-empty sink page (sound: nothing past the cap can satisfy a
    /// race predicate) and the failure surfaces via [`Detector::failure`].
    pub fn with_budget(mut self, b: ResourceBudget) -> Self {
        if let Some(bytes) = b.max_shadow_bytes {
            self.shadow.set_page_cap(bytes / WordShadow::BYTES_PER_PAGE);
        }
        self
    }

    pub fn shadow(&self) -> &WordShadow {
        &self.shadow
    }

    fn load_words<R: Reachability>(
        &mut self,
        s: StrandId,
        lo: u64,
        hi: u64,
        reach: &R,
        ranged: bool,
    ) {
        let report = &mut self.report;
        self.cache.begin_strand(s);
        if ranged {
            replay_interval(
                &mut self.shadow,
                WordOp::Read,
                lo,
                hi,
                s,
                reach,
                self.hot,
                &mut self.cache,
                report,
            );
        } else if self.hot.reach_cache {
            // Per-word lookups: each pays its own page-table walk (that cost
            // is the modeled quantity — batching must not hide it), but the
            // reachability cache is detector-internal and still applies.
            for w in lo..hi {
                read_word_cached(
                    self.shadow.entry_mut(w),
                    w,
                    s,
                    reach,
                    &mut self.cache,
                    report,
                );
            }
        } else {
            for w in lo..hi {
                read_word(self.shadow.entry_mut(w), w, s, reach, report);
            }
        }
    }

    fn store_words<R: Reachability>(
        &mut self,
        s: StrandId,
        lo: u64,
        hi: u64,
        reach: &R,
        ranged: bool,
    ) {
        let report = &mut self.report;
        self.cache.begin_strand(s);
        if ranged {
            replay_interval(
                &mut self.shadow,
                WordOp::Write,
                lo,
                hi,
                s,
                reach,
                self.hot,
                &mut self.cache,
                report,
            );
        } else if self.hot.reach_cache {
            for w in lo..hi {
                write_word_cached(
                    self.shadow.entry_mut(w),
                    w,
                    s,
                    reach,
                    &mut self.cache,
                    report,
                );
            }
        } else {
            for w in lo..hi {
                write_word(self.shadow.entry_mut(w), w, s, reach, report);
            }
        }
    }

    /// Strand-boundary accounting shared by the `strand_end` hook and
    /// `finish` (which is not a trace event and must not `observe`).
    fn end_strand(&mut self) {
        self.stats.strands_flushed += 1;
        if self.panic_at_flush == Some(self.stats.strands_flushed) {
            panic!("injected flush panic (fault plan panic-at-flush)");
        }
    }
}

impl<R: Reachability> Detector<R> for VanillaDetector {
    fn load(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &R) {
        self.report.observe(s, true);
        let (lo, hi) = word_range(addr, bytes);
        self.stats.read.hooks += 1;
        self.stats.read.hook_bytes += bytes as u64;
        self.stats.read.words += hi - lo;
        // A plain hook is one access: one interval of its own size.
        self.stats.read.intervals += 1;
        self.stats.read.interval_bytes += bytes as u64;
        self.load_words(s, lo, hi, reach, false);
    }

    fn store(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &R) {
        self.report.observe(s, true);
        let (lo, hi) = word_range(addr, bytes);
        self.stats.write.hooks += 1;
        self.stats.write.hook_bytes += bytes as u64;
        self.stats.write.words += hi - lo;
        self.stats.write.intervals += 1;
        self.stats.write.interval_bytes += bytes as u64;
        self.store_words(s, lo, hi, reach, false);
    }

    fn load_range(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &R) {
        self.report.observe(s, true);
        let (lo, hi) = word_range(addr, bytes);
        self.stats.read.hooks += 1;
        self.stats.read.hook_bytes += bytes as u64;
        self.stats.read.words += hi - lo;
        if self.compiler_coalescing {
            self.stats.read.intervals += 1;
            self.stats.read.interval_bytes += bytes as u64;
        } else {
            // Unmodified compiler: every word is its own access/interval.
            self.stats.read.intervals += hi - lo;
            self.stats.read.interval_bytes += (hi - lo) * 4;
        }
        self.load_words(s, lo, hi, reach, self.compiler_coalescing);
    }

    fn store_range(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &R) {
        self.report.observe(s, true);
        let (lo, hi) = word_range(addr, bytes);
        self.stats.write.hooks += 1;
        self.stats.write.hook_bytes += bytes as u64;
        self.stats.write.words += hi - lo;
        if self.compiler_coalescing {
            self.stats.write.intervals += 1;
            self.stats.write.interval_bytes += bytes as u64;
        } else {
            self.stats.write.intervals += hi - lo;
            self.stats.write.interval_bytes += (hi - lo) * 4;
        }
        self.store_words(s, lo, hi, reach, self.compiler_coalescing);
    }

    fn free(&mut self, s: StrandId, addr: usize, bytes: usize, _reach: &R) {
        self.report.observe(s, false);
        let (lo, hi) = word_range(addr, bytes);
        self.shadow.clear_range(lo, hi);
    }

    fn strand_end(&mut self, s: StrandId, _reach: &R) {
        self.report.observe(s, false);
        self.end_strand();
    }

    fn finish(&mut self, _s: StrandId, _reach: &R) {
        // `finish` is not a trace event: no `observe`, or replayed event ids
        // would drift past the trace length.
        self.end_strand();
        self.stats.hash_ops = self.shadow.ops;
        self.stats.reach_hits = self.cache.hits;
        self.stats.reach_misses = self.cache.misses;
        self.stats.reach_flushes = self.cache.flushes;
        self.stats.page_batches = self.shadow.batches;
        self.stats.page_batch_words = self.shadow.batched_words;
        self.stats.ah_bytes = self.shadow.heap_bytes();
    }

    fn failure(&self) -> Option<DetectorError> {
        self.shadow.exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_cilk::{run_with_detector, Cilk, CilkProgram};

    struct RacyPair;
    impl CilkProgram for RacyPair {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| c.store(100, 4));
            ctx.store(100, 4);
            ctx.sync();
        }
    }

    struct CleanPair;
    impl CilkProgram for CleanPair {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| c.store(100, 4));
            ctx.sync();
            ctx.store(100, 4);
        }
    }

    #[test]
    fn detects_simple_race() {
        for compiler in [false, true] {
            let det = VanillaDetector::new(compiler, RaceReport::default());
            let (ex, _) = run_with_detector(&mut RacyPair, det);
            let d = ex.into_detector();
            assert_eq!(d.report.racy_words(), vec![25], "compiler={compiler}");
        }
    }

    #[test]
    fn clean_program_is_race_free() {
        for compiler in [false, true] {
            let det = VanillaDetector::new(compiler, RaceReport::default());
            let (ex, _) = run_with_detector(&mut CleanPair, det);
            assert!(ex.det.report.is_race_free(), "compiler={compiler}");
        }
    }

    struct Ranged;
    impl CilkProgram for Ranged {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| c.store_range(0, 64)); // words 0..16
            ctx.load_range(32, 64); // words 8..24: overlap words 8..16
            ctx.sync();
        }
    }

    #[test]
    fn range_hooks_detect_overlapping_region() {
        for compiler in [false, true] {
            let det = VanillaDetector::new(compiler, RaceReport::default());
            let (ex, _) = run_with_detector(&mut Ranged, det);
            let d = ex.into_detector();
            assert_eq!(
                d.report.racy_words(),
                (8..16).collect::<Vec<u64>>(),
                "compiler={compiler}"
            );
            // Stats: interval accounting differs between the two modes.
            if compiler {
                assert_eq!(d.stats.write.intervals, 1);
                assert_eq!(d.stats.read.intervals, 1);
            } else {
                assert_eq!(d.stats.write.intervals, 16);
                assert_eq!(d.stats.read.intervals, 16);
            }
            assert_eq!(d.stats.write.words, 16);
            assert_eq!(d.stats.read.words, 16);
        }
    }
}
