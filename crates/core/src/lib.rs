//! **STINT** — Sequential Treap-based INTerval race detector.
//!
//! A from-scratch Rust reproduction of *"Efficient Access History for Race
//! Detection"* (Xu, Zhou, Lee, Yin, Agrawal, Schardl — SPAA 2021): an
//! on-the-fly determinacy-race detector for fork-join programs whose access
//! history is maintained at the granularity of *intervals* rather than
//! individual memory words.
//!
//! # Quick start
//!
//! Write your fork-join program against the [`Cilk`] trait and hand it to
//! [`detect`]:
//!
//! ```
//! use stint::{detect, Variant, Cilk, CilkProgram};
//!
//! struct Racy;
//! impl CilkProgram for Racy {
//!     fn run<C: Cilk>(&mut self, ctx: &mut C) {
//!         ctx.spawn(|c| c.store(0x1000, 8)); // child writes 8 bytes
//!         ctx.store(0x1004, 4);              // continuation overlaps it
//!         ctx.sync();
//!     }
//! }
//!
//! let outcome = detect(&mut Racy, Variant::Stint);
//! assert!(!outcome.report.is_race_free());
//! ```
//!
//! # The four variants (paper Section 5)
//!
//! | Variant | Coalescing | Access history |
//! |---|---|---|
//! | [`Variant::Vanilla`]  | none                  | word-granularity hashmap |
//! | [`Variant::Compiler`] | compile-time          | word-granularity hashmap |
//! | [`Variant::CompRts`]  | compile-time + runtime| word-granularity hashmap |
//! | [`Variant::Stint`]    | compile-time + runtime| **interval treap** |
//!
//! plus [`Variant::StintFlat`], an ablation that swaps the treap for a
//! `BTreeMap`-based store ("any balanced binary search tree would work").
//!
//! All variants share the SP-Order reachability component and report the
//! same set of racy words; they differ (exactly as in the paper) in how much
//! work the access history performs.

pub mod comprts;
pub mod ctrace;
pub mod journal;
pub mod report;
pub mod stats;
pub mod stint_det;
pub mod timing;
pub mod trace;
pub mod vanilla;
pub mod witness;
pub mod word_logic;

pub use comprts::CompRtsDetector;
pub use ctrace::{
    load_compressed, save_compressed, CompressStats, CompressedTraceReader, EventRun,
    DEFAULT_CHUNK_EVENTS, MAGIC_V2,
};
pub use report::{Race, RaceKind, RaceReport};
pub use stats::{DetectorStats, Sided};
pub use stint_det::{IntervalDetector, StintDetector, StintFlatDetector};
pub use trace::{
    record, replay, sniff_magic, PortableTrace, Trace, TraceEvent, TraceMagic, TraceOp,
    TraceRecorder, MAGIC_V1,
};
pub use vanilla::VanillaDetector;
pub use witness::{
    lineage_to_common, AccessEvidence, EventSpans, Provenance, Witness, WitnessChecker,
};

// Re-export the substrate surface users need.
pub use stint_cilk::{
    run_baseline, run_reach_only, run_with_detector, run_with_detector_r, BaseExec, Cilk,
    CilkProgram, Detector, ExecCounters, Executor, NopDetector,
};
pub use stint_faults::{DetectorError, FaultPlan, Resource, ScopedPlan};
pub use stint_ivtree::{FlatStore, Interval, IntervalStore, OpStats, Treap};
pub use stint_obs as obs;
pub use stint_sporder::{
    DePaReach, FrozenReach, ReachCache, ReachMaint, Reachability, SpOrder, SpOrderO1, StrandId,
};
pub use timing::{FlushTimer, TimingMode};

use std::time::Duration;

/// Which detector configuration to run (paper Section 5 naming).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Per-access checks, word-granularity hashmap, no coalescing.
    Vanilla,
    /// Compile-time coalescing only, word-granularity hashmap.
    Compiler,
    /// Compile-time + runtime coalescing, word-granularity hashmap.
    CompRts,
    /// Compile-time + runtime coalescing, interval-treap access history.
    Stint,
    /// STINT with the `BTreeMap` interval store (ablation).
    StintFlat,
}

impl Variant {
    pub const ALL: [Variant; 4] = [
        Variant::Vanilla,
        Variant::Compiler,
        Variant::CompRts,
        Variant::Stint,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Variant::Vanilla => "vanilla",
            Variant::Compiler => "compiler",
            Variant::CompRts => "comp+rts",
            Variant::Stint => "STINT",
            Variant::StintFlat => "STINT(btree)",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Hot-path configuration shared by the detectors.
///
/// Both knobs are pure optimizations: any combination reports exactly the
/// same races (enforced by the differential tests in
/// `tests/cached_reach.rs`). [`HotPath::LEGACY`] selects the historical
/// unoptimized paths and is what the perf gate uses as its baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotPath {
    /// Replay word ranges page run by page run (one page-table resolution
    /// per up to 4096 words) instead of re-walking the page table per word.
    pub batched: bool,
    /// Memoize reachability queries in a strand-local [`ReachCache`].
    pub reach_cache: bool,
    /// Gate the per-flush `ah_time` clock reads behind the process timing
    /// mode (see [`timing`]). When false, every strand-end flush pays two
    /// `Instant::now` calls regardless of mode — the historical behavior.
    pub gated_timing: bool,
}

impl Default for HotPath {
    fn default() -> Self {
        HotPath {
            batched: true,
            reach_cache: true,
            gated_timing: true,
        }
    }
}

impl HotPath {
    /// The unoptimized paths: per-word page walks, uncached reachability,
    /// unconditional flush timing.
    pub const LEGACY: HotPath = HotPath {
        batched: false,
        reach_cache: false,
        gated_timing: false,
    };
}

/// Resource budgets for a detection run (default: unbounded).
///
/// When a budget is hit the detector does **not** abort: it records a
/// [`DetectorError::ResourceExhausted`] (surfaced via [`Outcome::degraded`])
/// and degrades soundly — it stops extending the access history past the
/// failure point, so every race it *does* report is real and the verdict is
/// complete up to the failure point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Cap, in bytes, on each shadow structure the variant allocates (the
    /// word-granularity access history and/or the per-strand coalescing bit
    /// tables). `None` = unbounded.
    pub max_shadow_bytes: Option<u64>,
    /// Cap on the total number of stored intervals (read tree + write tree;
    /// interval variants only). `None` = unbounded.
    pub max_intervals: Option<u64>,
}

impl ResourceBudget {
    pub const UNLIMITED: ResourceBudget = ResourceBudget {
        max_shadow_bytes: None,
        max_intervals: None,
    };

    /// Budget with the shadow cap given in whole mebibytes (CLI
    /// `--max-shadow-mb`).
    pub fn with_shadow_mb(mut self, mb: u64) -> Self {
        self.max_shadow_bytes = Some(mb.saturating_mul(1 << 20));
        self
    }

    pub fn with_max_intervals(mut self, n: u64) -> Self {
        self.max_intervals = Some(n);
        self
    }
}

/// Which reachability substrate maintains series/parallel order during a
/// sequential detection run. Both substrates answer every query identically
/// (differentially enforced in `tests/prop_depa.rs`); they differ in
/// maintenance mechanics — SP-Order relabels mutable order-maintenance
/// lists, DePa publishes immutable depth-vector timestamps whose queries
/// are lock-free (which is what lets `stint-batchdet`'s online mode fan
/// detection out over a shared `&DePaReach`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReachKind {
    /// SP-Order over the labelled OM list (the default).
    SpOrder,
    /// Relabel-free DePa depth-vector timestamps.
    DePa,
}

impl ReachKind {
    pub fn name(self) -> &'static str {
        match self {
            ReachKind::SpOrder => "sporder",
            ReachKind::DePa => "depa",
        }
    }
}

/// Options for [`detect_with`].
#[derive(Clone, Copy, Debug)]
pub struct Config {
    pub variant: Variant,
    /// Reachability substrate (default: SP-Order).
    pub reach: ReachKind,
    /// Cap on detailed race records kept.
    pub race_cap: usize,
    /// Maintain the exact racy-word set (cheap for race-free programs; can
    /// be large for heavily racy ones).
    pub collect_racy_words: bool,
    /// Hot-path optimizations (default: all on).
    pub hot: HotPath,
    /// Resource budgets (default: unbounded).
    pub budget: ResourceBudget,
    /// Capture verifiable race witnesses (see [`witness`]). Off by default;
    /// disabled capture costs one `Option` discriminant check per hook.
    pub witnesses: bool,
}

impl Config {
    pub fn new(variant: Variant) -> Self {
        Config {
            variant,
            reach: ReachKind::SpOrder,
            race_cap: 10_000,
            collect_racy_words: true,
            hot: HotPath::default(),
            budget: ResourceBudget::UNLIMITED,
            witnesses: false,
        }
    }
}

/// Result of a detection run.
#[derive(Clone, Debug)]
pub struct Outcome {
    pub variant: Variant,
    pub report: RaceReport,
    pub stats: DetectorStats,
    /// Wall-clock time of the instrumented, detected execution.
    pub wall: Duration,
    /// Strands created by the execution.
    pub strands: usize,
    /// Executor spawn/sync counters.
    pub counters: ExecCounters,
    /// `Some` if the detector hit a resource budget (or injected fault) and
    /// went dead partway through: the report is sound but only complete up
    /// to the failure point.
    pub degraded: Option<DetectorError>,
}

/// Race detect `p` with the given variant and default options.
pub fn detect<P: CilkProgram>(p: &mut P, variant: Variant) -> Outcome {
    detect_with(p, Config::new(variant))
}

/// Race detect `p` with explicit options.
pub fn detect_with<P: CilkProgram>(p: &mut P, cfg: Config) -> Outcome {
    match cfg.reach {
        ReachKind::SpOrder => detect_in::<P, SpOrder>(p, cfg),
        ReachKind::DePa => detect_in::<P, DePaReach>(p, cfg),
    }
}

/// [`detect_with`] over an explicit reachability substrate. Every variant's
/// detector is generic over [`Reachability`], so the substrate threads
/// through unchanged.
fn detect_in<P: CilkProgram, R: ReachMaint>(p: &mut P, cfg: Config) -> Outcome {
    let mut report = RaceReport::new(cfg.race_cap, cfg.collect_racy_words);
    report.set_witness_capture(cfg.witnesses);
    match cfg.variant {
        Variant::Vanilla => {
            let det = VanillaDetector::new(false, report)
                .with_hot_path(cfg.hot)
                .with_budget(cfg.budget);
            let (ex, wall) = run_traced::<_, _, R>(p, det);
            pack(cfg.variant, wall, ex, |d| (d.report, d.stats))
        }
        Variant::Compiler => {
            let det = VanillaDetector::new(true, report)
                .with_hot_path(cfg.hot)
                .with_budget(cfg.budget);
            let (ex, wall) = run_traced::<_, _, R>(p, det);
            pack(cfg.variant, wall, ex, |d| (d.report, d.stats))
        }
        Variant::CompRts => {
            let det = CompRtsDetector::new(report)
                .with_hot_path(cfg.hot)
                .with_budget(cfg.budget);
            let (ex, wall) = run_traced::<_, _, R>(p, det);
            pack(cfg.variant, wall, ex, |d| (d.report, d.stats))
        }
        Variant::Stint => {
            let det = StintDetector::new(report)
                .with_hot_path(cfg.hot)
                .with_budget(cfg.budget);
            let (ex, wall) = run_traced::<_, _, R>(p, det);
            pack(cfg.variant, wall, ex, |d| (d.report, d.stats))
        }
        Variant::StintFlat => {
            let det = StintFlatDetector::new_flat(report)
                .with_hot_path(cfg.hot)
                .with_budget(cfg.budget);
            let (ex, wall) = run_traced::<_, _, R>(p, det);
            pack(cfg.variant, wall, ex, |d| (d.report, d.stats))
        }
    }
}

/// [`run_with_detector_r`] under a `detect.execute` span — the instrumented
/// execution phase of every variant shows up as one top-level slice.
fn run_traced<P: CilkProgram, D: Detector<R>, R: ReachMaint>(
    p: &mut P,
    det: D,
) -> (Executor<D, R>, Duration) {
    let _span = stint_obs::span("detect.execute");
    run_with_detector_r(p, det)
}

/// Panic-safe [`detect_with`]: the whole instrumented execution runs under
/// `catch_unwind`, so an internal detector panic — including the structured
/// [`DetectorError::raise`] used by infallible deep paths such as
/// order-maintenance tag exhaustion — surfaces as an `Err` instead of
/// aborting the caller.
///
/// Resource-budget exhaustion does **not** produce an `Err`: the detectors
/// degrade soundly and finish, and the failure is reported through
/// [`Outcome::degraded`].
pub fn try_detect_with<P: CilkProgram>(p: &mut P, cfg: Config) -> Result<Outcome, DetectorError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| detect_with(p, cfg)))
        .map_err(DetectorError::from_panic)
}

fn pack<D: Detector<R>, R: ReachMaint>(
    variant: Variant,
    wall: Duration,
    ex: Executor<D, R>,
    split: impl FnOnce(D) -> (RaceReport, DetectorStats),
) -> Outcome {
    let _span = stint_obs::span("detect.report");
    let strands = ex.strand_count();
    let counters = ex.counters;
    let degraded = ex.det.failure();
    let (report, stats) = split(ex.into_detector());
    // Publish the run's statistics into the observability registry. The
    // registry values are the *same* numbers as `Outcome::stats` (both come
    // from `DetectorStats::fields`), so the metrics export and the figure
    // tables cannot disagree; across multiple runs in one process the
    // registry accumulates totals, as counters do.
    if stint_obs::is_enabled() {
        for (name, v) in stats.fields() {
            stint_obs::add(name, v);
        }
        stint_obs::add("detector.ah_time_ns", stats.ah_time.as_nanos() as u64);
        stint_obs::add("detector.wall_ns", wall.as_nanos() as u64);
        stint_obs::add("detector.strands", strands as u64);
        stint_obs::add("detector.races", report.total);
    }
    Outcome {
        variant,
        report,
        stats,
        wall,
        strands,
        counters,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fanout {
        racy: bool,
    }
    impl CilkProgram for Fanout {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            // 8 children write disjoint (or, if racy, overlapping) blocks.
            let step = if self.racy { 96 } else { 128 };
            for i in 0..8usize {
                ctx.spawn(move |c| {
                    c.store_range(i * step, 128);
                    c.load_range(i * step, 128);
                });
            }
            ctx.sync();
            ctx.load_range(0, 8 * 128);
        }
    }

    #[test]
    fn all_variants_agree_on_race_freedom() {
        for v in Variant::ALL {
            let o = detect(&mut Fanout { racy: false }, v);
            assert!(o.report.is_race_free(), "{v} reported spurious races");
        }
    }

    #[test]
    fn all_variants_agree_on_racy_words() {
        let expected = detect(&mut Fanout { racy: true }, Variant::Vanilla)
            .report
            .racy_words();
        assert!(!expected.is_empty());
        for v in [
            Variant::Compiler,
            Variant::CompRts,
            Variant::Stint,
            Variant::StintFlat,
        ] {
            let got = detect(&mut Fanout { racy: true }, v).report.racy_words();
            assert_eq!(got, expected, "{v} disagrees with vanilla");
        }
    }

    #[test]
    fn o1_order_maintenance_agrees() {
        // Same detection through SP-Order over the two-level O(1) OM list.
        use stint_cilk::run_with_detector_in;
        use stint_om::TwoLevelOm;
        let expected = detect(&mut Fanout { racy: true }, Variant::Stint)
            .report
            .racy_words();
        let det = StintDetector::new(RaceReport::default());
        let (ex, _) = run_with_detector_in::<_, _, TwoLevelOm>(&mut Fanout { racy: true }, det);
        assert_eq!(ex.det.report.racy_words(), expected);
        let det = StintDetector::new(RaceReport::default());
        let (ex, _) = run_with_detector_in::<_, _, TwoLevelOm>(&mut Fanout { racy: false }, det);
        assert!(ex.det.report.is_race_free());
    }

    #[test]
    fn unbudgeted_runs_are_not_degraded() {
        for v in Variant::ALL {
            let o = detect(&mut Fanout { racy: true }, v);
            assert!(o.degraded.is_none(), "{v} degraded without a budget");
        }
    }

    #[test]
    fn shadow_budget_degrades_soundly() {
        // A zero-byte shadow budget exhausts on the first page: the run must
        // still finish, report no false races, and surface the failure.
        for v in Variant::ALL {
            let mut cfg = Config::new(v);
            cfg.budget.max_shadow_bytes = Some(0);
            let o = detect_with(&mut Fanout { racy: false }, cfg);
            assert!(o.report.is_race_free(), "{v} fabricated races when capped");
            let err = o.degraded.expect("zero budget must exhaust");
            assert_eq!(err.exit_code(), 3, "{v}: {err}");
        }
    }

    #[test]
    fn interval_budget_freezes_history() {
        let mut cfg = Config::new(Variant::Stint);
        cfg.budget.max_intervals = Some(1);
        let o = detect_with(&mut Fanout { racy: false }, cfg);
        assert!(o.report.is_race_free());
        assert!(
            matches!(
                o.degraded,
                Some(DetectorError::ResourceExhausted {
                    resource: Resource::Intervals,
                    limit: 1,
                    ..
                })
            ),
            "unexpected failure: {:?}",
            o.degraded
        );
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let expected = detect(&mut Fanout { racy: true }, Variant::Stint)
            .report
            .racy_words();
        let mut cfg = Config::new(Variant::Stint);
        cfg.budget = ResourceBudget::UNLIMITED
            .with_shadow_mb(64)
            .with_max_intervals(1 << 20);
        let o = detect_with(&mut Fanout { racy: true }, cfg);
        assert!(o.degraded.is_none());
        assert_eq!(o.report.racy_words(), expected);
    }

    #[test]
    fn try_detect_passes_through_clean_runs() {
        let o = try_detect_with(&mut Fanout { racy: false }, Config::new(Variant::Stint))
            .expect("clean run must not error");
        assert!(o.report.is_race_free());
    }

    #[test]
    fn try_detect_catches_panics_as_poisoned() {
        struct Exploding;
        impl CilkProgram for Exploding {
            fn run<C: Cilk>(&mut self, ctx: &mut C) {
                ctx.store(0, 4);
                panic!("boom");
            }
        }
        let err = try_detect_with(&mut Exploding, Config::new(Variant::Stint))
            .expect_err("panic must surface as an error");
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("boom"), "{err}");
    }

    #[test]
    fn outcome_carries_stats() {
        let o = detect(&mut Fanout { racy: false }, Variant::Stint);
        assert!(o.strands > 8);
        assert_eq!(o.counters.spawns, 8);
        assert!(o.stats.read.intervals > 0);
        assert!(o.stats.write.intervals > 0);
        assert!(o.stats.treap.ops > 0);
    }
}
