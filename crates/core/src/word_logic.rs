//! The per-word last-writer/leftmost-reader protocol [Feng & Leiserson],
//! shared by every variant that keeps word-granularity shadow state
//! (`vanilla`, `compiler`, `comp+rts`).

use crate::report::{RaceKind, RaceReport};
use stint_shadow::{WordEntry, NO_STRAND};
use stint_sporder::{Reachability, StrandId};

/// Process a write by strand `s` to the word `w` with shadow entry `e`.
#[inline]
pub fn write_word<R: Reachability>(
    e: &mut WordEntry,
    w: u64,
    s: StrandId,
    reach: &R,
    report: &mut RaceReport,
) {
    if e.reader != NO_STRAND {
        let r = StrandId(e.reader);
        if reach.parallel(r, s) {
            report.add(RaceKind::ReadWrite, w, w + 1, r, s);
        }
    }
    if e.writer != NO_STRAND {
        let wr = StrandId(e.writer);
        if reach.parallel(wr, s) {
            report.add(RaceKind::WriteWrite, w, w + 1, wr, s);
        }
    }
    // The current strand is always the new last writer (sequential order).
    e.writer = s.0;
}

/// Process a read by strand `s` of the word `w` with shadow entry `e`.
#[inline]
pub fn read_word<R: Reachability>(
    e: &mut WordEntry,
    w: u64,
    s: StrandId,
    reach: &R,
    report: &mut RaceReport,
) {
    if e.writer != NO_STRAND {
        let wr = StrandId(e.writer);
        if reach.parallel(wr, s) {
            report.add(RaceKind::WriteRead, w, w + 1, wr, s);
        }
    }
    // Keep whichever reader is leftmost. Under sequential execution the new
    // reader is left of the stored one exactly when they are in series.
    if e.reader == NO_STRAND || reach.left_of(s, StrandId(e.reader)) {
        e.reader = s.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_sporder::SpOrder;

    /// Build a tiny SP structure: root spawns child (parallel with
    /// continuation), then syncs.
    fn fixture() -> (SpOrder, StrandId, StrandId, StrandId, StrandId) {
        let (mut sp, root) = SpOrder::new();
        let j = sp.new_sync_strand(root);
        let s = sp.spawn(root);
        (sp, root, s.child, s.continuation, j)
    }

    #[test]
    fn parallel_write_write_races() {
        let (sp, _root, child, cont, _j) = fixture();
        let mut e = WordEntry::EMPTY;
        let mut rep = RaceReport::default();
        write_word(&mut e, 5, child, &sp, &mut rep);
        assert!(rep.is_race_free());
        write_word(&mut e, 5, cont, &sp, &mut rep);
        assert_eq!(rep.total, 1);
        assert_eq!(rep.races()[0].kind, RaceKind::WriteWrite);
        assert_eq!(e.writer, cont.0, "new write becomes last writer");
    }

    #[test]
    fn series_accesses_do_not_race() {
        let (sp, root, child, _cont, j) = fixture();
        let mut e = WordEntry::EMPTY;
        let mut rep = RaceReport::default();
        write_word(&mut e, 5, root, &sp, &mut rep);
        write_word(&mut e, 5, child, &sp, &mut rep); // root ≺ child
        read_word(&mut e, 5, j, &sp, &mut rep); // child ≺ j
        assert!(rep.is_race_free());
        assert_eq!(e.reader, j.0);
    }

    #[test]
    fn parallel_read_then_write_races() {
        let (sp, _root, child, cont, _j) = fixture();
        let mut e = WordEntry::EMPTY;
        let mut rep = RaceReport::default();
        read_word(&mut e, 9, child, &sp, &mut rep);
        write_word(&mut e, 9, cont, &sp, &mut rep);
        assert_eq!(rep.total, 1);
        assert_eq!(rep.races()[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn parallel_write_then_read_races() {
        let (sp, _root, child, cont, _j) = fixture();
        let mut e = WordEntry::EMPTY;
        let mut rep = RaceReport::default();
        write_word(&mut e, 9, child, &sp, &mut rep);
        read_word(&mut e, 9, cont, &sp, &mut rep);
        assert_eq!(rep.total, 1);
        assert_eq!(rep.races()[0].kind, RaceKind::WriteRead);
    }

    #[test]
    fn parallel_reads_do_not_race_and_leftmost_is_kept() {
        let (sp, _root, child, cont, j) = fixture();
        let mut e = WordEntry::EMPTY;
        let mut rep = RaceReport::default();
        read_word(&mut e, 1, child, &sp, &mut rep);
        read_word(&mut e, 1, cont, &sp, &mut rep);
        assert!(rep.is_race_free());
        // child executed first and is parallel with cont ⇒ child is leftmost.
        assert_eq!(e.reader, child.0);
        // A series successor replaces the leftmost reader.
        read_word(&mut e, 1, j, &sp, &mut rep);
        assert_eq!(e.reader, j.0);
        assert!(rep.is_race_free());
    }
}
