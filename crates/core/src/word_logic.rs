//! The per-word last-writer/leftmost-reader protocol [Feng & Leiserson],
//! shared by every variant that keeps word-granularity shadow state
//! (`vanilla`, `compiler`, `comp+rts`).

use crate::report::{RaceKind, RaceReport};
use crate::HotPath;
use stint_shadow::{WordEntry, WordShadow, NO_STRAND};
use stint_sporder::{ReachCache, Reachability, StrandId};

/// Process a write by strand `s` to the word `w` with shadow entry `e`.
#[inline]
pub fn write_word<R: Reachability>(
    e: &mut WordEntry,
    w: u64,
    s: StrandId,
    reach: &R,
    report: &mut RaceReport,
) {
    if e.reader != NO_STRAND {
        let r = StrandId(e.reader);
        if reach.parallel(r, s) {
            report.add_r(RaceKind::ReadWrite, w, w + 1, r, s, reach);
        }
    }
    if e.writer != NO_STRAND {
        let wr = StrandId(e.writer);
        if reach.parallel(wr, s) {
            report.add_r(RaceKind::WriteWrite, w, w + 1, wr, s, reach);
        }
    }
    // The current strand is always the new last writer (sequential order).
    e.writer = s.0;
}

/// Process a read by strand `s` of the word `w` with shadow entry `e`.
#[inline]
pub fn read_word<R: Reachability>(
    e: &mut WordEntry,
    w: u64,
    s: StrandId,
    reach: &R,
    report: &mut RaceReport,
) {
    if e.writer != NO_STRAND {
        let wr = StrandId(e.writer);
        if reach.parallel(wr, s) {
            report.add_r(RaceKind::WriteRead, w, w + 1, wr, s, reach);
        }
    }
    // Keep whichever reader is leftmost. Under sequential execution the new
    // reader is left of the stored one exactly when they are in series.
    if e.reader == NO_STRAND || reach.left_of(s, StrandId(e.reader)) {
        e.reader = s.0;
    }
}

/// [`write_word`] with reachability answers memoized in `cache`. The caller
/// must have pointed the cache at `s` via [`ReachCache::begin_strand`].
#[inline]
pub fn write_word_cached<R: Reachability>(
    e: &mut WordEntry,
    w: u64,
    s: StrandId,
    reach: &R,
    cache: &mut ReachCache,
    report: &mut RaceReport,
) {
    debug_assert_eq!(cache.current(), s);
    if e.reader != NO_STRAND {
        let r = StrandId(e.reader);
        if cache.parallel_with_cur(r, reach) {
            report.add_r(RaceKind::ReadWrite, w, w + 1, r, s, reach);
        }
    }
    if e.writer != NO_STRAND {
        let wr = StrandId(e.writer);
        if cache.parallel_with_cur(wr, reach) {
            report.add_r(RaceKind::WriteWrite, w, w + 1, wr, s, reach);
        }
    }
    e.writer = s.0;
}

/// [`read_word`] with reachability answers memoized in `cache`. The caller
/// must have pointed the cache at `s` via [`ReachCache::begin_strand`].
#[inline]
pub fn read_word_cached<R: Reachability>(
    e: &mut WordEntry,
    w: u64,
    s: StrandId,
    reach: &R,
    cache: &mut ReachCache,
    report: &mut RaceReport,
) {
    debug_assert_eq!(cache.current(), s);
    if e.writer != NO_STRAND {
        let wr = StrandId(e.writer);
        if cache.parallel_with_cur(wr, reach) {
            report.add_r(RaceKind::WriteRead, w, w + 1, wr, s, reach);
        }
    }
    if e.reader == NO_STRAND || cache.cur_left_of(StrandId(e.reader), reach) {
        e.reader = s.0;
    }
}

/// Which word operation an interval replay performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WordOp {
    Read,
    Write,
}

/// Replay the interval `[lo, hi)` against the word shadow, dispatching on the
/// hot-path configuration:
///
/// * `hot.batched` — walk the range page run by page run
///   ([`WordShadow::process_range_on_page`]: one page-table resolution per up
///   to 4096 words) instead of re-walking per word;
/// * `hot.reach_cache` — answer reachability queries through `cache`.
///
/// Shared by the `compiler` ranged path and the `comp+rts` strand-end replay
/// so both take the identical fast path. With `HotPath::LEGACY` this is
/// exactly the historical `for_range_mut` + uncached loop, which the
/// differential tests (and the perf-gate baseline) run against.
#[inline]
#[allow(clippy::too_many_arguments)] // flat arg list keeps the hook path monomorphic and borrow-friendly
pub fn replay_interval<R: Reachability>(
    shadow: &mut WordShadow,
    op: WordOp,
    lo: u64,
    hi: u64,
    s: StrandId,
    reach: &R,
    hot: HotPath,
    cache: &mut ReachCache,
    report: &mut RaceReport,
) {
    if lo >= hi {
        return;
    }
    // `op` is matched per page run (not per word) so each arm compiles to a
    // monomorphic inner loop over the page slice.
    //
    // The fully-hot arm also short-circuits uniform runs: consecutive words
    // of a replayed interval overwhelmingly hold the identical
    // (reader, writer) pair (a single earlier interval populated them), and
    // the word protocol's decisions depend only on that pair and `s`. A word
    // whose entry equals the previous race-free input is rewritten to the
    // previous output without re-deciding anything; racy inputs are never
    // memoized (each racy word must reach `report.add` itself).
    match (hot.batched, hot.reach_cache) {
        (true, true) => shadow.process_range_on_page(lo, hi, |w0, entries| {
            let mut memo: Option<(WordEntry, WordEntry)> = None;
            match op {
                WordOp::Read => {
                    for (i, e) in entries.iter_mut().enumerate() {
                        if let Some((pin, pout)) = memo {
                            if *e == pin {
                                *e = pout;
                                continue;
                            }
                        }
                        let before = *e;
                        let races = report.total;
                        read_word_cached(e, w0 + i as u64, s, reach, cache, report);
                        memo = (report.total == races).then_some((before, *e));
                    }
                }
                WordOp::Write => {
                    for (i, e) in entries.iter_mut().enumerate() {
                        if let Some((pin, pout)) = memo {
                            if *e == pin {
                                *e = pout;
                                continue;
                            }
                        }
                        let before = *e;
                        let races = report.total;
                        write_word_cached(e, w0 + i as u64, s, reach, cache, report);
                        memo = (report.total == races).then_some((before, *e));
                    }
                }
            }
        }),
        (true, false) => shadow.process_range_on_page(lo, hi, |w0, entries| match op {
            WordOp::Read => {
                for (i, e) in entries.iter_mut().enumerate() {
                    read_word(e, w0 + i as u64, s, reach, report);
                }
            }
            WordOp::Write => {
                for (i, e) in entries.iter_mut().enumerate() {
                    write_word(e, w0 + i as u64, s, reach, report);
                }
            }
        }),
        (false, true) => match op {
            WordOp::Read => shadow.for_range_mut(lo, hi, |w, e| {
                read_word_cached(e, w, s, reach, cache, report)
            }),
            WordOp::Write => shadow.for_range_mut(lo, hi, |w, e| {
                write_word_cached(e, w, s, reach, cache, report)
            }),
        },
        (false, false) => match op {
            WordOp::Read => shadow.for_range_mut(lo, hi, |w, e| read_word(e, w, s, reach, report)),
            WordOp::Write => {
                shadow.for_range_mut(lo, hi, |w, e| write_word(e, w, s, reach, report))
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_sporder::SpOrder;

    /// Build a tiny SP structure: root spawns child (parallel with
    /// continuation), then syncs.
    fn fixture() -> (SpOrder, StrandId, StrandId, StrandId, StrandId) {
        let (mut sp, root) = SpOrder::new();
        let j = sp.new_sync_strand(root);
        let s = sp.spawn(root);
        (sp, root, s.child, s.continuation, j)
    }

    #[test]
    fn parallel_write_write_races() {
        let (sp, _root, child, cont, _j) = fixture();
        let mut e = WordEntry::EMPTY;
        let mut rep = RaceReport::default();
        write_word(&mut e, 5, child, &sp, &mut rep);
        assert!(rep.is_race_free());
        write_word(&mut e, 5, cont, &sp, &mut rep);
        assert_eq!(rep.total, 1);
        assert_eq!(rep.races()[0].kind, RaceKind::WriteWrite);
        assert_eq!(e.writer, cont.0, "new write becomes last writer");
    }

    #[test]
    fn series_accesses_do_not_race() {
        let (sp, root, child, _cont, j) = fixture();
        let mut e = WordEntry::EMPTY;
        let mut rep = RaceReport::default();
        write_word(&mut e, 5, root, &sp, &mut rep);
        write_word(&mut e, 5, child, &sp, &mut rep); // root ≺ child
        read_word(&mut e, 5, j, &sp, &mut rep); // child ≺ j
        assert!(rep.is_race_free());
        assert_eq!(e.reader, j.0);
    }

    #[test]
    fn parallel_read_then_write_races() {
        let (sp, _root, child, cont, _j) = fixture();
        let mut e = WordEntry::EMPTY;
        let mut rep = RaceReport::default();
        read_word(&mut e, 9, child, &sp, &mut rep);
        write_word(&mut e, 9, cont, &sp, &mut rep);
        assert_eq!(rep.total, 1);
        assert_eq!(rep.races()[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn parallel_write_then_read_races() {
        let (sp, _root, child, cont, _j) = fixture();
        let mut e = WordEntry::EMPTY;
        let mut rep = RaceReport::default();
        write_word(&mut e, 9, child, &sp, &mut rep);
        read_word(&mut e, 9, cont, &sp, &mut rep);
        assert_eq!(rep.total, 1);
        assert_eq!(rep.races()[0].kind, RaceKind::WriteRead);
    }

    #[test]
    fn parallel_reads_do_not_race_and_leftmost_is_kept() {
        let (sp, _root, child, cont, j) = fixture();
        let mut e = WordEntry::EMPTY;
        let mut rep = RaceReport::default();
        read_word(&mut e, 1, child, &sp, &mut rep);
        read_word(&mut e, 1, cont, &sp, &mut rep);
        assert!(rep.is_race_free());
        // child executed first and is parallel with cont ⇒ child is leftmost.
        assert_eq!(e.reader, child.0);
        // A series successor replaces the leftmost reader.
        read_word(&mut e, 1, j, &sp, &mut rep);
        assert_eq!(e.reader, j.0);
        assert!(rep.is_race_free());
    }

    /// Cached word ops must be observationally identical to the plain ones:
    /// same race reports, same shadow-entry evolution.
    #[test]
    fn cached_ops_match_uncached() {
        let (sp, root, child, cont, j) = fixture();
        let script: [(bool, StrandId); 7] = [
            (false, root), // write
            (true, child), // read
            (false, cont),
            (true, cont),
            (false, child),
            (true, j),
            (false, j),
        ];
        let mut e_plain = WordEntry::EMPTY;
        let mut e_cached = WordEntry::EMPTY;
        let mut rep_plain = RaceReport::default();
        let mut rep_cached = RaceReport::default();
        let mut cache = ReachCache::new();
        for &(is_read, s) in &script {
            cache.begin_strand(s);
            if is_read {
                read_word(&mut e_plain, 7, s, &sp, &mut rep_plain);
                read_word_cached(&mut e_cached, 7, s, &sp, &mut cache, &mut rep_cached);
            } else {
                write_word(&mut e_plain, 7, s, &sp, &mut rep_plain);
                write_word_cached(&mut e_cached, 7, s, &sp, &mut cache, &mut rep_cached);
            }
            assert_eq!(e_plain.reader, e_cached.reader);
            assert_eq!(e_plain.writer, e_cached.writer);
        }
        assert_eq!(rep_plain.racy_words(), rep_cached.racy_words());
        assert_eq!(rep_plain.total, rep_cached.total);
    }

    /// All four (batched × cached) replay configurations agree with each
    /// other on a cross-page range.
    #[test]
    fn replay_interval_configs_agree() {
        let (sp, _root, child, cont, _j) = fixture();
        let configs = [
            HotPath::LEGACY,
            HotPath {
                batched: true,
                reach_cache: false,
                ..HotPath::default()
            },
            HotPath {
                batched: false,
                reach_cache: true,
                ..HotPath::default()
            },
            HotPath::default(),
        ];
        let lo = 4000u64;
        let hi = 4200u64; // crosses the 4096-word page boundary
        let mut outcomes = Vec::new();
        for hot in configs {
            let mut shadow = WordShadow::new();
            let mut cache = ReachCache::new();
            let mut rep = RaceReport::default();
            cache.begin_strand(child);
            replay_interval(
                &mut shadow,
                WordOp::Write,
                lo,
                hi,
                child,
                &sp,
                hot,
                &mut cache,
                &mut rep,
            );
            cache.begin_strand(cont);
            replay_interval(
                &mut shadow,
                WordOp::Read,
                lo + 50,
                hi + 50,
                cont,
                &sp,
                hot,
                &mut cache,
                &mut rep,
            );
            outcomes.push((rep.racy_words(), rep.total));
        }
        assert_eq!(outcomes[0].0, (lo + 50..hi).collect::<Vec<u64>>());
        for o in &outcomes[1..] {
            assert_eq!(o, &outcomes[0]);
        }
    }
}
