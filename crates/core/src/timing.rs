//! Access-history timing gate.
//!
//! The batching detectors (`comp+rts`, `STINT`) time each strand-end flush to
//! produce the `ah_time` figure (paper Figure 7/8 overhead columns). Two
//! `Instant::now` calls per flush are measurable on fine-grained workloads —
//! strands can flush in well under a microsecond — so the clock reads are
//! gated behind a process-wide mode:
//!
//! * `full` — time every flush (exact, the pre-gate behavior);
//! * `sampled` (default) — time every 64th flush and scale the elapsed time
//!   by 64, an unbiased estimate when flush cost is stationary;
//! * `off` — never read the clock; `ah_time` stays zero.
//!
//! The mode comes from the `STINT_AH_TIMING` environment variable, read once,
//! or from [`set_mode`] if a binary calls it before the first detector runs
//! (the perf gate forces `off`; figure-7 style runs force `full`).
//!
//! The mode is a **latch**: whichever of [`mode`] and [`set_mode`] runs first
//! fixes the mode for the rest of the process, and later [`set_mode`] calls
//! do *not* change it. This is deliberate — `FlushTimer`s snapshot the mode
//! at construction, so flipping it mid-process would silently produce
//! detectors with mixed timing policies. A caller that loses the race gets
//! the latched mode back from [`set_mode`] and must decide whether that mode
//! is acceptable for its measurement.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingMode {
    Off,
    Sampled,
    Full,
}

static MODE: OnceLock<TimingMode> = OnceLock::new();

/// Sampled flushes are scaled by this factor (must be a power of two).
pub const SAMPLE_PERIOD: u32 = 64;

/// The process-wide timing mode. First call latches it (env var
/// `STINT_AH_TIMING` = `off` | `sampled` | `full`, default `sampled`).
pub fn mode() -> TimingMode {
    *MODE.get_or_init(|| match std::env::var("STINT_AH_TIMING").as_deref() {
        Ok("off") => TimingMode::Off,
        Ok("full") => TimingMode::Full,
        _ => TimingMode::Sampled,
    })
}

/// Force the timing mode, overriding the environment, and return the mode
/// actually in effect. If the mode was already latched (by an earlier
/// [`mode`] or `set_mode` call) the request is ignored and the latched mode
/// is returned — callers that need `m` specifically must compare the return
/// value rather than assume the override took. A lost override is surfaced
/// on the observability stream (`timing.set_mode_lost`) so silent mixed-mode
/// measurements are diagnosable.
pub fn set_mode(m: TimingMode) -> TimingMode {
    if MODE.set(m).is_err() {
        let latched = mode();
        if latched != m {
            OBS_SET_MODE_LOST.incr();
            stint_obs::event("timing.set_mode_lost");
        }
        return latched;
    }
    m
}

static OBS_SET_MODE_LOST: stint_obs::Counter = stint_obs::Counter::new("timing.set_mode_lost");

/// Per-detector flush timer implementing the gate. One instance per detector;
/// the mode is latched at construction.
#[derive(Debug)]
pub struct FlushTimer {
    mode: TimingMode,
    flushes: u32,
}

impl Default for FlushTimer {
    fn default() -> Self {
        FlushTimer {
            mode: mode(),
            flushes: 0,
        }
    }
}

impl FlushTimer {
    /// A timer that times every flush regardless of the process mode — the
    /// pre-gate behavior, used by `HotPath { gated_timing: false }`.
    pub fn full() -> Self {
        FlushTimer {
            mode: TimingMode::Full,
            flushes: 0,
        }
    }

    /// Start timing a flush. `None` means this flush is not being timed.
    #[inline]
    pub fn begin(&mut self) -> Option<Instant> {
        match self.mode {
            TimingMode::Off => None,
            TimingMode::Full => Some(Instant::now()),
            TimingMode::Sampled => {
                let take = self.flushes & (SAMPLE_PERIOD - 1) == 0;
                self.flushes = self.flushes.wrapping_add(1);
                take.then(Instant::now)
            }
        }
    }

    /// Account a flush started by [`begin`](Self::begin) into `acc`.
    #[inline]
    pub fn end(&self, t0: Option<Instant>, acc: &mut Duration) {
        if let Some(t0) = t0 {
            let dt = t0.elapsed();
            *acc += if self.mode == TimingMode::Sampled {
                dt * SAMPLE_PERIOD
            } else {
                dt
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `mode()` is process-global, so tests exercise FlushTimer with explicit
    // modes rather than racing over the OnceLock.
    fn timer(mode: TimingMode) -> FlushTimer {
        FlushTimer { mode, flushes: 0 }
    }

    #[test]
    fn off_never_reads_clock() {
        let mut t = timer(TimingMode::Off);
        let mut acc = Duration::ZERO;
        for _ in 0..200 {
            let t0 = t.begin();
            assert!(t0.is_none());
            t.end(t0, &mut acc);
        }
        assert_eq!(acc, Duration::ZERO);
    }

    #[test]
    fn full_times_every_flush() {
        let mut t = timer(TimingMode::Full);
        for _ in 0..5 {
            assert!(t.begin().is_some());
        }
    }

    #[test]
    fn sampled_times_one_in_period_and_scales() {
        let mut t = timer(TimingMode::Sampled);
        let taken: u32 = (0..(SAMPLE_PERIOD * 3))
            .map(|_| t.begin().is_some() as u32)
            .sum();
        assert_eq!(taken, 3);
        // Scaling: an accounted sample contributes its elapsed × period.
        let mut acc = Duration::ZERO;
        let mut t = timer(TimingMode::Sampled);
        let t0 = t.begin();
        std::thread::sleep(Duration::from_millis(2));
        t.end(t0, &mut acc);
        assert!(acc >= Duration::from_millis(2) * SAMPLE_PERIOD);
    }
}
