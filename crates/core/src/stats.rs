//! Detector statistics — the raw numbers behind Figures 1, 6, 7 and 8.

use std::time::Duration;
use stint_ivtree::OpStats;

/// Per-kind (read/write) access statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sided {
    /// Top-level instrumentation hook calls delivered to the detector.
    pub hooks: u64,
    /// Bytes covered by those hook calls (with multiplicity).
    pub hook_bytes: u64,
    /// 4-byte words processed at word granularity (with multiplicity) —
    /// Figure 1/6's "acc." columns.
    pub words: u64,
    /// Intervals that made it into the access history — Figure 1/6's "int."
    /// columns. For the `compiler` variant this counts top-level calls into
    /// the access history (each hook is one interval).
    pub intervals: u64,
    /// Bytes covered by those intervals — Figure 6's "sum" column.
    pub interval_bytes: u64,
}

impl Sided {
    /// Average interval size in bytes — Figure 6's "avg" column.
    pub fn avg_interval_bytes(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.interval_bytes as f64 / self.intervals as f64
        }
    }

    fn merge(&mut self, other: &Sided) {
        self.hooks += other.hooks;
        self.hook_bytes += other.hook_bytes;
        self.words += other.words;
        self.intervals += other.intervals;
        self.interval_bytes += other.interval_bytes;
    }
}

/// Statistics collected by a detector run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DetectorStats {
    pub read: Sided,
    pub write: Sided,
    /// Time spent querying/updating the access history only (Figure 7's
    /// `hashmap`/`treap` columns, Figure 8's `oh` columns). Only the batching
    /// variants (`comp+rts`, `STINT`) measure this — they do access-history
    /// work in per-strand bursts that are cheap to time.
    pub ah_time: Duration,
    /// Word-granularity shadow operations (Figure 8's `hash ops`).
    pub hash_ops: u64,
    /// Interval-store operations and their per-op node/overlap counts
    /// (Figure 8's `treap ops`, `# nodes`, `# overlaps`).
    pub treap: OpStats,
    /// Strands whose accesses were flushed (non-empty strands).
    pub strands_flushed: u64,
    /// Reachability queries answered by the strand-local cache.
    pub reach_hits: u64,
    /// Reachability queries that walked the order-maintenance lists.
    pub reach_misses: u64,
    /// Strand-boundary invalidations of the reachability cache.
    pub reach_flushes: u64,
    /// Instrumentation hooks elided by the redundant-`set_range` filter:
    /// the hook's word range was already fully set in the bit table this
    /// strand, so the table (and its page lookup) was skipped entirely.
    pub hook_filter_hits: u64,
    /// Single-page runs processed by the batched shadow-replay path.
    pub page_batches: u64,
    /// Words covered by those runs (`page_batch_words / page_batches` is the
    /// mean number of words served per page-table resolution).
    pub page_batch_words: u64,
    /// Heap bytes held by the access history at the end of the run — shadow
    /// pages for the hash variants, interval-store arenas for STINT. The
    /// paper's space-overhead comparison divides the hash variants' value by
    /// STINT's.
    pub ah_bytes: u64,
    /// Heap bytes of the runtime-coalescing bit tables (zero for variants
    /// without runtime coalescing).
    pub coalesce_bytes: u64,
    /// Interval-store insert operations (Lemma 4.1's `m`, summed over the
    /// read and write trees).
    pub treap_inserts: u64,
    /// Peak intervals stored at once, summed over the read and write trees
    /// (per Lemma 4.1, `treap_len_hw <= 2*treap_inserts + 2`).
    pub treap_len_hw: u64,
}

impl DetectorStats {
    pub fn total_words(&self) -> u64 {
        self.read.words + self.write.words
    }
    pub fn total_intervals(&self) -> u64 {
        self.read.intervals + self.write.intervals
    }
    /// Fraction of reachability queries served by the cache (0 if uncached).
    pub fn reach_hit_rate(&self) -> f64 {
        let total = self.reach_hits + self.reach_misses;
        if total == 0 {
            0.0
        } else {
            self.reach_hits as f64 / total as f64
        }
    }
    /// Mean words handled per page-table resolution on the batched path.
    pub fn avg_page_batch_words(&self) -> f64 {
        if self.page_batches == 0 {
            0.0
        } else {
            self.page_batch_words as f64 / self.page_batches as f64
        }
    }

    /// Fold another run's statistics into this one. Used by the batch
    /// detector to aggregate per-shard stats: counters and times sum;
    /// `treap_len_hw` sums the per-shard peaks, an upper bound on the true
    /// simultaneous peak (shards need not peak at the same moment).
    pub fn merge(&mut self, other: &DetectorStats) {
        self.read.merge(&other.read);
        self.write.merge(&other.write);
        self.ah_time += other.ah_time;
        self.hash_ops += other.hash_ops;
        self.treap.merge(&other.treap);
        self.strands_flushed += other.strands_flushed;
        self.reach_hits += other.reach_hits;
        self.reach_misses += other.reach_misses;
        self.reach_flushes += other.reach_flushes;
        self.hook_filter_hits += other.hook_filter_hits;
        self.page_batches += other.page_batches;
        self.page_batch_words += other.page_batch_words;
        self.ah_bytes += other.ah_bytes;
        self.coalesce_bytes += other.coalesce_bytes;
        self.treap_inserts += other.treap_inserts;
        self.treap_len_hw += other.treap_len_hw;
    }

    /// Every integer field as a named `("detector.…", value)` pair. This is
    /// the single source the JSON exporters and the observability registry
    /// both consume, so the figure tables and the metrics stream can never
    /// disagree on a statistic. `ah_time` is a `Duration` and is reported
    /// separately (as nanoseconds) by callers that want it.
    pub fn fields(&self) -> [(&'static str, u64); 25] {
        [
            ("detector.read_hooks", self.read.hooks),
            ("detector.read_hook_bytes", self.read.hook_bytes),
            ("detector.read_words", self.read.words),
            ("detector.read_intervals", self.read.intervals),
            ("detector.read_interval_bytes", self.read.interval_bytes),
            ("detector.write_hooks", self.write.hooks),
            ("detector.write_hook_bytes", self.write.hook_bytes),
            ("detector.write_words", self.write.words),
            ("detector.write_intervals", self.write.intervals),
            ("detector.write_interval_bytes", self.write.interval_bytes),
            ("detector.hash_ops", self.hash_ops),
            ("detector.treap_ops", self.treap.ops),
            ("detector.treap_visited", self.treap.visited),
            ("detector.treap_overlaps", self.treap.overlaps),
            ("detector.strands_flushed", self.strands_flushed),
            ("detector.reach_hits", self.reach_hits),
            ("detector.reach_misses", self.reach_misses),
            ("detector.reach_flushes", self.reach_flushes),
            ("detector.hook_filter_hits", self.hook_filter_hits),
            ("detector.page_batches", self.page_batches),
            ("detector.page_batch_words", self.page_batch_words),
            ("detector.ah_bytes", self.ah_bytes),
            ("detector.coalesce_bytes", self.coalesce_bytes),
            ("detector.treap_inserts", self.treap_inserts),
            ("detector.treap_len_hw", self.treap_len_hw),
        ]
    }
}
