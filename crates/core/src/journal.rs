//! Crash-safe append-only journal framing (`stint-journal-v1`).
//!
//! The serve daemon appends one checksummed record per session lifecycle
//! transition; after a crash, [`replay`] recovers every intact record and
//! degrades to a **structured partial answer** on a torn or corrupted
//! tail — it never panics and never drops records written before the
//! damage. The encoding reuses the `ctrace` idiom: a text magic line,
//! then length-prefixed binary frames
//!
//! ```text
//! STINT-JOURNAL v1\n
//! [varint payload_len] [varint fnv1a(payload)] [payload bytes] ...
//! ```
//!
//! LEB128 varints and FNV-1a 64 exactly as in the compressed trace
//! encoding (`ctrace::fnv1a` is shared; the varint helpers there are
//! buffer-oriented and private, so this module carries its own
//! stream-oriented pair). Record payloads are opaque here — the serve
//! crate defines the session-event codec on top.
//!
//! Durability is a knob ([`FsyncPolicy`]): `always` fsyncs every append
//! (crash loses at most the record being written), `every=N` amortizes,
//! `off` leaves flushing to the OS. The `serve-journal-kill/trunc/flip`
//! fault knobs are applied *inside* [`JournalWriter::append`] so the
//! chaos suite can prove torn-tail recovery end to end: `kill` aborts the
//! process mid-append, `trunc` writes a half record and deadens the
//! journal, `flip` damages one bit of a record and deadens the journal
//! (deadening keeps the injected damage at the tail, mirroring a real
//! crash).

use std::fs::File;
use std::io::{self, Read, Write};

use crate::ctrace::fnv1a;

/// Magic first line of every journal file.
pub const MAGIC: &str = "STINT-JOURNAL v1";

/// Upper bound on a single record payload. A flipped bit in a length
/// varint must not cause a giant allocation: anything larger than this is
/// reported as corruption.
pub const MAX_RECORD: u64 = 1 << 20;

fn bad(m: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, m.into())
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read one varint whose first byte is already in hand (frame-boundary
/// EOF detection needs the first byte probed separately).
fn read_varint_cont<R: Read>(r: &mut R, first: u8) -> io::Result<u64> {
    let mut v = u64::from(first & 0x7f);
    let mut byte = first;
    let mut shift = 7u32;
    while byte & 0x80 != 0 {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        byte = b[0];
        if shift >= 64 {
            return Err(bad("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        shift += 7;
    }
    Ok(v)
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    read_varint_cont(r, b[0])
}

/// When the journal file is flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record — a crash loses at most the record being
    /// appended (the default).
    Always,
    /// fsync every Nth record.
    Every(u64),
    /// Never fsync; flushing is left to the OS page cache.
    Off,
}

impl FsyncPolicy {
    /// Parse a `--journal-fsync` spec: `always`, `off`, or `every=N`
    /// (N ≥ 1).
    pub fn parse(spec: &str) -> Result<FsyncPolicy, String> {
        match spec.trim() {
            "always" => Ok(FsyncPolicy::Always),
            "off" => Ok(FsyncPolicy::Off),
            other => match other.split_once('=') {
                Some(("every", n)) => match n.trim().parse::<u64>() {
                    Ok(n) if n >= 1 => Ok(FsyncPolicy::Every(n)),
                    _ => Err(format!("bad fsync period {n:?} (want an integer ≥ 1)")),
                },
                _ => Err(format!(
                    "unknown fsync policy {other:?} (want always, off, or every=N)"
                )),
            },
        }
    }
}

/// Byte sink a journal can append to: any `Write` plus an optional
/// durability barrier. Files fsync; in-memory sinks (tests) are already
/// "durable".
pub trait JournalSink: Write + Send {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl JournalSink for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

impl JournalSink for Vec<u8> {}
impl JournalSink for io::Sink {}

/// Append-only writer of checksummed length-prefixed records.
pub struct JournalWriter {
    sink: Box<dyn JournalSink>,
    policy: FsyncPolicy,
    /// Records appended through this writer (drives `every=N` fsync and
    /// the fault-knob record counters).
    records: u64,
    /// Set when an injected torn-tail fault has fired: the journal stops
    /// appending so the damage stays at the tail, like a real crash.
    dead: Option<String>,
}

impl JournalWriter {
    /// Start a **new** journal on `sink`: writes the magic line first.
    pub fn create(
        mut sink: Box<dyn JournalSink>,
        policy: FsyncPolicy,
    ) -> io::Result<JournalWriter> {
        writeln!(sink, "{MAGIC}")?;
        sink.flush()?;
        Ok(JournalWriter {
            sink,
            policy,
            records: 0,
            dead: None,
        })
    }

    /// Continue an **existing** journal (magic already on disk; `sink`
    /// must be positioned/opened for append).
    pub fn append_to(sink: Box<dyn JournalSink>, policy: FsyncPolicy) -> JournalWriter {
        JournalWriter {
            sink,
            policy,
            records: 0,
            dead: None,
        }
    }

    /// Records appended through this writer so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Why this writer stopped appending, if an injected tail fault fired.
    pub fn dead_reason(&self) -> Option<&str> {
        self.dead.as_deref()
    }

    /// Append one record: `[varint len][varint fnv1a][payload]`, then
    /// flush (and fsync per policy). Applies the `serve-journal-*` fault
    /// knobs; after an injected `trunc`/`flip` the writer goes dead and
    /// later appends are silently dropped (the damage must stay the tail).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.dead.is_some() {
            return Ok(());
        }
        let n = self.records + 1;
        let mut frame = Vec::with_capacity(payload.len() + 12);
        put_varint(&mut frame, payload.len() as u64);
        put_varint(&mut frame, fnv1a(payload));
        frame.extend_from_slice(payload);
        if stint_faults::is_active() {
            if stint_faults::serve_journal_kill() == Some(n) {
                // Crash mid-append: half the frame reaches the disk, then
                // the process dies on the spot. Replay must recover every
                // record before this one.
                let half = &frame[..frame.len() / 2];
                let _ = self.sink.write_all(half);
                let _ = self.sink.flush();
                let _ = self.sink.sync();
                std::process::abort();
            }
            if stint_faults::serve_journal_trunc() == Some(n) {
                let half = &frame[..frame.len() / 2];
                self.sink.write_all(half)?;
                self.sink.flush()?;
                self.sink.sync()?;
                self.dead = Some(format!("injected torn tail at record {n}"));
                return Ok(());
            }
            if stint_faults::serve_journal_flip() == Some(n) {
                let mid = frame.len() / 2;
                frame[mid] ^= 0x10;
                self.sink.write_all(&frame)?;
                self.sink.flush()?;
                self.sink.sync()?;
                self.dead = Some(format!("injected bit flip in record {n}"));
                return Ok(());
            }
        }
        self.sink.write_all(&frame)?;
        self.sink.flush()?;
        self.records = n;
        match self.policy {
            FsyncPolicy::Always => self.sink.sync()?,
            FsyncPolicy::Every(k) if n.is_multiple_of(k) => self.sink.sync()?,
            _ => {}
        }
        Ok(())
    }
}

/// Result of replaying a journal stream: every intact record payload in
/// append order, plus a corruption detail when the tail was damaged.
/// `corruption = None` means the journal read cleanly to EOF.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    pub records: Vec<Vec<u8>>,
    /// What stopped the replay, if anything (torn tail, bad checksum,
    /// oversized frame, bad magic). Records before the damage are always
    /// in `records` — a structured partial answer, never a panic.
    pub corruption: Option<String>,
}

impl Replay {
    pub fn is_clean(&self) -> bool {
        self.corruption.is_none()
    }
}

/// Replay a journal byte stream. Only I/O errors from the underlying
/// reader surface as `Err`; every *data* problem (missing magic, torn
/// varint, short payload, checksum mismatch, oversized frame) is reported
/// via [`Replay::corruption`] with the intact prefix in
/// [`Replay::records`]. An empty stream is a clean empty journal.
pub fn replay<R: Read>(mut r: R) -> io::Result<Replay> {
    let mut out = Replay::default();
    // Magic line: read exactly MAGIC.len() + 1 bytes.
    let mut magic = vec![0u8; MAGIC.len() + 1];
    let mut got = 0usize;
    while got < magic.len() {
        match r.read(&mut magic[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if got == 0 {
        return Ok(out); // brand-new journal: clean and empty
    }
    if got < magic.len() || &magic[..MAGIC.len()] != MAGIC.as_bytes() || magic[MAGIC.len()] != b'\n'
    {
        out.corruption = Some(format!("bad magic: expected {MAGIC:?} line"));
        return Ok(out);
    }
    loop {
        // Probe one byte so EOF exactly on a record boundary is clean.
        let mut first = [0u8; 1];
        match r.read(&mut first) {
            Ok(0) => return Ok(out),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        let rec = out.records.len() + 1;
        let len = match read_varint_cont(&mut r, first[0]) {
            Ok(v) => v,
            Err(e) => {
                out.corruption = Some(format!("record {rec}: torn length varint ({e})"));
                return Ok(out);
            }
        };
        if len > MAX_RECORD {
            out.corruption = Some(format!(
                "record {rec}: oversized frame ({len} bytes > {MAX_RECORD})"
            ));
            return Ok(out);
        }
        let sum = match read_varint(&mut r) {
            Ok(v) => v,
            Err(e) => {
                out.corruption = Some(format!("record {rec}: torn checksum varint ({e})"));
                return Ok(out);
            }
        };
        let mut payload = vec![0u8; len as usize];
        if let Err(e) = r.read_exact(&mut payload) {
            out.corruption = Some(format!("record {rec}: torn payload ({e})"));
            return Ok(out);
        }
        if fnv1a(&payload) != sum {
            out.corruption = Some(format!("record {rec}: checksum mismatch"));
            return Ok(out);
        }
        out.records.push(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::{Arc, Mutex};

    /// Sink shared with the test so the writer's exact bytes are readable.
    #[derive(Clone, Default)]
    struct SharedVec(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedVec {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl JournalSink for SharedVec {}

    fn journal_of(payloads: &[&[u8]]) -> Vec<u8> {
        let sink = SharedVec::default();
        let mut w =
            JournalWriter::create(Box::new(sink.clone()), FsyncPolicy::Off).expect("create");
        for p in payloads {
            w.append(p).expect("append");
        }
        assert_eq!(w.records(), payloads.len() as u64);
        let bytes = sink.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
        bytes
    }

    #[test]
    fn round_trip() {
        let j = journal_of(&[b"alpha", b"", b"gamma gamma"]);
        let r = replay(&j[..]).expect("replay");
        assert!(r.is_clean(), "{:?}", r.corruption);
        assert_eq!(
            r.records,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma gamma".to_vec()]
        );
    }

    #[test]
    fn empty_stream_is_clean() {
        let r = replay(&[][..]).expect("replay");
        assert!(r.is_clean());
        assert!(r.records.is_empty());
    }

    #[test]
    fn magic_only_is_clean() {
        let r = replay(format!("{MAGIC}\n").as_bytes()).expect("replay");
        assert!(r.is_clean());
        assert!(r.records.is_empty());
    }

    #[test]
    fn bad_magic_is_structured() {
        let r = replay(&b"STINT-JOURNAL v9\nxxxx"[..]).expect("replay");
        assert!(!r.is_clean());
        assert!(r.records.is_empty());
    }

    #[test]
    fn truncated_tail_keeps_prefix() {
        let payloads: [&[u8]; 3] = [b"first", b"second", b"third"];
        let j = journal_of(&payloads);
        // Byte offsets at which a truncation lands exactly on a record
        // boundary — there the shorter journal is legitimately clean
        // (indistinguishable from fewer appends).
        let mut boundaries = vec![MAGIC.len() + 1];
        for p in &payloads {
            let mut frame = Vec::new();
            put_varint(&mut frame, p.len() as u64);
            put_varint(&mut frame, fnv1a(p));
            let prev = *boundaries.last().expect("nonempty");
            boundaries.push(prev + frame.len() + p.len());
        }
        for cut in 1..j.len() {
            let keep = j.len() - cut;
            let r = replay(&j[..keep]).expect("replay");
            assert!(r.records.len() <= 3);
            // Every recovered record is one of the real ones, in order.
            for (i, rec) in r.records.iter().enumerate() {
                assert_eq!(rec, payloads[i], "cut={cut}");
            }
            if boundaries.contains(&keep) {
                assert!(r.is_clean(), "boundary cut at {keep} flagged: {r:?}");
                assert_eq!(
                    r.records.len(),
                    boundaries.iter().position(|b| *b == keep).unwrap()
                );
            } else {
                assert!(!r.is_clean(), "mid-record cut at {keep} not flagged");
            }
        }
    }

    #[test]
    fn bit_flip_is_caught() {
        let j = journal_of(&[b"first", b"second"]);
        for i in MAGIC.len() + 1..j.len() {
            let mut damaged = j.clone();
            damaged[i] ^= 0x08;
            let r = replay(&damaged[..]).expect("replay");
            // Either the flip hit a later record (prefix intact) or the
            // replay flagged it; silent full recovery of damaged bytes
            // would mean the checksum missed it.
            if r.is_clean() {
                assert_eq!(r.records.len(), 2, "flip at {i} silently dropped records");
                assert!(
                    r.records == vec![b"first".to_vec(), b"second".to_vec()],
                    "flip at {i} silently altered a record"
                );
            }
        }
    }

    #[test]
    fn oversized_len_is_structured_not_an_allocation() {
        let mut j = Vec::new();
        writeln!(j, "{MAGIC}").unwrap();
        put_varint(&mut j, u64::MAX); // absurd length
        put_varint(&mut j, 0);
        let r = replay(&j[..]).expect("replay");
        assert!(!r.is_clean());
        assert!(r.corruption.as_deref().unwrap_or("").contains("oversized"));
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("off"), Ok(FsyncPolicy::Off));
        assert_eq!(FsyncPolicy::parse("every=8"), Ok(FsyncPolicy::Every(8)));
        assert!(FsyncPolicy::parse("every=0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }
}
