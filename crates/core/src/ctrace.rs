//! Compressed, chunked on-disk trace encoding (`STINT-TRACE v2`).
//!
//! The v1 format spells every event as a text line (~12–16 bytes per
//! event). "Data Race Detection on Compressed Traces" (PAPERS.md) observes
//! that instrumentation streams are extremely regular — long runs of
//! same-strand, same-size accesses marching through memory at a constant
//! stride — and that detection can run *directly over the compressed form*.
//! This module provides that encoding:
//!
//! * **delta-coded addresses** — each event stores a zigzag varint delta
//!   against the previous event's address (reset per chunk so chunks decode
//!   independently);
//! * **run-length coalesced runs** — consecutive events with the same op,
//!   strand, byte count, and constant address stride collapse into one
//!   [`EventRun`] record with a repeat count. Decoding expands a run back to
//!   the exact original events, so a compressed round trip reproduces the
//!   identical stream (and therefore identical reports *and* detector
//!   statistics). Contiguous runs (`stride == bytes`, word-aligned) can
//!   instead be consumed *wholesale* by the interval detector as a single
//!   coalesced range access — see [`EventRun::as_wholesale_range`];
//! * **varint lengths and fixed-size chunks** — events are grouped into
//!   chunks of at most `chunk_events` decoded events, each with its own
//!   length and FNV-1a checksum, so a reader streams a trace far larger
//!   than RAM one chunk at a time and a bit flip anywhere is caught
//!   structurally instead of corrupting detection;
//! * **a partition index in the header** — the word-space bounds plus a
//!   [`HIST_BUCKETS`]-bucket event histogram, computed once at save time, so
//!   a streaming batch detector can choose load-balanced address shards
//!   *before* reading any chunk.
//!
//! The header (strand ranks, event count, bounds, histogram) is covered by
//! its own checksum; [`CompressedTraceReader::open`] validates it before
//! returning, extending the `validate()` contract to the new format.

use std::io::{self, BufRead, Read, Write};

use crate::trace::{PortableTrace, Trace, TraceEvent, TraceOp};
use stint_sporder::{FrozenReach, StrandId};

/// Magic first line of the compressed format (text, so `file`/`head` can
/// identify a trace; everything after the newline is binary).
pub const MAGIC_V2: &str = "STINT-TRACE v2";

/// Buckets in the header's event histogram (the partition index).
pub const HIST_BUCKETS: usize = 256;

/// Default maximum decoded events per chunk.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

fn bad(m: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, m.into())
}

// ---------------------------------------------------------------- varints

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn get_varint(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or_else(|| bad("truncated varint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(bad("varint overflow"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn get_zigzag(buf: &[u8], pos: &mut usize) -> io::Result<i64> {
    let v = get_varint(buf, pos)?;
    Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
}

/// Read one varint directly from a stream (chunk framing lives outside the
/// checksummed payloads, so it is read byte by byte).
fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(bad("varint overflow"));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn is_permutation(v: &[u32]) -> bool {
    let n = v.len();
    let mut seen = vec![false; n];
    v.iter().all(|&r| {
        let i = r as usize;
        i < n && !std::mem::replace(&mut seen[i], true)
    })
}

/// FNV-1a 64 — the chunk and header checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------------- runs

const OP_TAGS: [TraceOp; 6] = [
    TraceOp::Load,
    TraceOp::Store,
    TraceOp::LoadRange,
    TraceOp::StoreRange,
    TraceOp::Free,
    TraceOp::StrandEnd,
];

fn op_tag(op: TraceOp) -> u8 {
    OP_TAGS.iter().position(|&o| o == op).unwrap_or(0) as u8
}

/// A run-length record: `count` events `(op, strand, addr + i*stride,
/// bytes)` for `i` in `0..count`. Single events are runs with `count == 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRun {
    pub op: TraceOp,
    pub strand: StrandId,
    pub addr: usize,
    pub bytes: usize,
    pub count: u64,
    /// Signed address stride between consecutive events of the run
    /// (meaningful only when `count > 1`).
    pub stride: i64,
}

impl EventRun {
    fn single(e: &TraceEvent) -> EventRun {
        EventRun {
            op: e.op,
            strand: e.strand,
            addr: e.addr,
            bytes: e.bytes,
            count: 1,
            stride: 0,
        }
    }

    /// Address of the run's last event.
    fn last_addr(&self) -> usize {
        (self.addr as i64).wrapping_add(self.stride.wrapping_mul(self.count as i64 - 1)) as usize
    }

    /// When the run tiles memory contiguously (`stride == bytes`, both
    /// word-aligned), its events set exactly the same shadow words as one
    /// coalesced range access over the union — so an interval detector can
    /// consume the whole run as a single `load_range`/`store_range`.
    /// Returns the `(op, addr, total_bytes)` of that coalesced access.
    pub fn as_wholesale_range(&self) -> Option<(TraceOp, usize, usize)> {
        if self.count < 2 || self.bytes == 0 {
            return None;
        }
        let op = match self.op {
            TraceOp::Load | TraceOp::LoadRange => TraceOp::LoadRange,
            TraceOp::Store | TraceOp::StoreRange => TraceOp::StoreRange,
            _ => return None,
        };
        if self.stride != self.bytes as i64
            || !self.addr.is_multiple_of(4)
            || !self.bytes.is_multiple_of(4)
        {
            return None;
        }
        let total = self.bytes.checked_mul(self.count as usize)?;
        self.addr.checked_add(total)?;
        Some((op, self.addr, total))
    }

    /// Expand the run back to its exact original events.
    pub fn expand_into(&self, out: &mut Vec<TraceEvent>) {
        let mut addr = self.addr;
        for i in 0..self.count {
            out.push(TraceEvent {
                op: self.op,
                strand: self.strand,
                addr,
                bytes: self.bytes,
            });
            if i + 1 < self.count {
                addr = (addr as i64).wrapping_add(self.stride) as usize;
            }
        }
    }
}

/// Greedy run-length construction over an event slice: consecutive access
/// events with the same op, strand, and byte count at a constant stride
/// collapse into one run. `Free` and `StrandEnd` never coalesce.
fn build_runs(events: &[TraceEvent]) -> Vec<EventRun> {
    let mut runs: Vec<EventRun> = Vec::new();
    for e in events {
        let coalescable = !matches!(e.op, TraceOp::Free | TraceOp::StrandEnd);
        if coalescable {
            if let Some(r) = runs.last_mut() {
                if r.op == e.op && r.strand == e.strand && r.bytes == e.bytes {
                    let delta = (e.addr as i64).wrapping_sub(r.last_addr() as i64);
                    if r.count == 1 {
                        r.stride = delta;
                        r.count = 2;
                        continue;
                    } else if delta == r.stride {
                        r.count += 1;
                        continue;
                    }
                }
            }
        }
        runs.push(EventRun::single(e));
    }
    runs
}

// ------------------------------------------------------------------ write

/// Per-save summary returned by [`save_compressed`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CompressStats {
    pub events: u64,
    pub runs: u64,
    pub chunks: u64,
    /// Total bytes written, including the magic line and all framing.
    pub bytes: u64,
}

fn encode_run(payload: &mut Vec<u8>, r: &EventRun, prev_addr: &mut usize) {
    payload.push(op_tag(r.op));
    put_varint(payload, u64::from(r.strand.0));
    if r.op != TraceOp::StrandEnd {
        put_zigzag(payload, (r.addr as i64).wrapping_sub(*prev_addr as i64));
        put_varint(payload, r.bytes as u64);
        if !matches!(r.op, TraceOp::Free) {
            put_varint(payload, r.count);
            if r.count > 1 {
                put_zigzag(payload, r.stride);
            }
        }
        *prev_addr = r.last_addr();
    }
}

/// Word-space bounds and the bucketed access-event histogram used as the
/// partition index: `bounds` is `(word_lo, word_hi)` over every access/free
/// event, `hist[b]` counts events whose first word falls in bucket `b`.
pub fn partition_index(trace: &Trace) -> (Option<(u64, u64)>, Vec<u64>) {
    let mut bounds: Option<(u64, u64)> = None;
    for e in &trace.events {
        if e.op == TraceOp::StrandEnd {
            continue;
        }
        let (lo, hi) = stint_cilk::word_range(e.addr, e.bytes);
        bounds = Some(match bounds {
            None => (lo, hi),
            Some((a, b)) => (a.min(lo), b.max(hi)),
        });
    }
    let mut hist = vec![0u64; HIST_BUCKETS];
    if let Some((lo, hi)) = bounds {
        let bw = bucket_width(lo, hi);
        for e in &trace.events {
            if e.op == TraceOp::StrandEnd {
                continue;
            }
            let (wlo, _) = stint_cilk::word_range(e.addr, e.bytes);
            let b = ((wlo - lo) / bw).min(HIST_BUCKETS as u64 - 1) as usize;
            hist[b] += 1;
        }
    }
    (bounds, hist)
}

/// Width of one histogram bucket over `[lo, hi)` (at least 1 word).
pub fn bucket_width(lo: u64, hi: u64) -> u64 {
    ((hi - lo).div_ceil(HIST_BUCKETS as u64)).max(1)
}

/// Serialize a portable trace in the compressed chunked `STINT-TRACE v2`
/// format, with at most `chunk_events` decoded events per chunk.
pub fn save_compressed<W: Write>(
    pt: &PortableTrace,
    mut w: W,
    chunk_events: usize,
) -> io::Result<CompressStats> {
    let chunk_events = chunk_events.max(1);
    let mut stats = CompressStats {
        events: pt.trace.len() as u64,
        ..Default::default()
    };
    writeln!(w, "{MAGIC_V2}")?;
    stats.bytes += MAGIC_V2.len() as u64 + 1;

    // Header: ranks, event count, partition index; checksummed as a block.
    let mut header = Vec::new();
    put_varint(&mut header, pt.reach.strand_count() as u64);
    for (e, h) in pt.reach.ranks() {
        put_varint(&mut header, u64::from(e));
        put_varint(&mut header, u64::from(h));
    }
    put_varint(&mut header, pt.trace.len() as u64);
    let (bounds, hist) = partition_index(&pt.trace);
    let (lo, hi) = bounds.unwrap_or((0, 0));
    put_varint(&mut header, lo);
    put_varint(&mut header, hi - lo);
    put_varint(&mut header, hist.len() as u64);
    for &c in &hist {
        put_varint(&mut header, c);
    }
    // Optional lineage block (spawn parents for race witnesses): absent for
    // snapshots without a parent table, so older files — which end at the
    // histogram — still parse.
    if let Some(parents) = pt.reach.parents() {
        for &par in parents {
            // NO_PARENT → 0, else parent+1: keeps the root a 1-byte varint.
            put_varint(
                &mut header,
                if par == stint_sporder::NO_PARENT {
                    0
                } else {
                    u64::from(par) + 1
                },
            );
        }
    }
    let mut framing = Vec::new();
    put_varint(&mut framing, header.len() as u64);
    put_varint(&mut framing, fnv1a(&header));
    w.write_all(&framing)?;
    w.write_all(&header)?;
    stats.bytes += (framing.len() + header.len()) as u64;

    // Chunks: greedy runs, flushed when the decoded-event budget is met.
    let runs = build_runs(&pt.trace.events);
    stats.runs = runs.len() as u64;
    let mut payload = Vec::new();
    let mut prev_addr = 0usize;
    let mut chunk_runs = 0u64;
    let mut chunk_decoded = 0usize;
    let flush = |payload: &mut Vec<u8>,
                 chunk_runs: &mut u64,
                 w: &mut W,
                 stats: &mut CompressStats|
     -> io::Result<()> {
        if *chunk_runs == 0 {
            return Ok(());
        }
        let mut frame = Vec::new();
        put_varint(&mut frame, *chunk_runs);
        put_varint(&mut frame, payload.len() as u64);
        put_varint(&mut frame, fnv1a(payload));
        w.write_all(&frame)?;
        w.write_all(payload)?;
        stats.bytes += (frame.len() + payload.len()) as u64;
        stats.chunks += 1;
        payload.clear();
        *chunk_runs = 0;
        Ok(())
    };
    for r in &runs {
        encode_run(&mut payload, r, &mut prev_addr);
        chunk_runs += 1;
        chunk_decoded += r.count as usize;
        if chunk_decoded >= chunk_events {
            flush(&mut payload, &mut chunk_runs, &mut w, &mut stats)?;
            chunk_decoded = 0;
            prev_addr = 0; // chunks decode independently
        }
    }
    flush(&mut payload, &mut chunk_runs, &mut w, &mut stats)?;
    Ok(stats)
}

// ------------------------------------------------------------------- read

/// Streaming reader for the `STINT-TRACE v2` format: the header (ranks +
/// partition index) is validated and resident; event chunks are decoded one
/// [`CompressedTraceReader::next_chunk`] call at a time, so detection over a
/// trace never needs the whole event stream in memory.
pub struct CompressedTraceReader<R> {
    r: R,
    pub reach: FrozenReach,
    /// Total decoded events the stream must yield.
    pub total_events: u64,
    /// Word-space bounds `[word_lo, word_hi)` over all access/free events.
    pub word_lo: u64,
    pub word_hi: u64,
    /// The save-time event histogram over [`HIST_BUCKETS`] buckets.
    pub hist: Vec<u64>,
    events_seen: u64,
    bytes_read: u64,
    chunks_read: u64,
    scratch: Vec<u8>,
}

impl<R: BufRead> CompressedTraceReader<R> {
    /// Parse and validate the magic line and header. Returns a reader
    /// positioned at the first chunk.
    pub fn open(mut r: R) -> io::Result<Self> {
        let mut magic = String::new();
        r.read_line(&mut magic)?;
        if magic.trim_end() != MAGIC_V2 {
            return Err(bad(format!("bad magic: expected {MAGIC_V2}")));
        }
        Self::open_after_magic(r)
    }

    /// Like [`Self::open`] for a stream whose magic line was already
    /// consumed (format sniffing reads it first).
    pub fn open_after_magic(mut r: R) -> io::Result<Self> {
        let header_len = read_varint(&mut r)?;
        if header_len > 64 << 20 {
            return Err(bad("unreasonable header length"));
        }
        let want_sum = read_varint(&mut r)?;
        let mut header = vec![0u8; header_len as usize];
        r.read_exact(&mut header)
            .map_err(|_| bad("truncated header"))?;
        if fnv1a(&header) != want_sum {
            return Err(bad("header checksum mismatch"));
        }
        let mut pos = 0usize;
        let n = get_varint(&header, &mut pos)? as usize;
        if n == 0 || n > u32::MAX as usize {
            return Err(bad("bad strand count"));
        }
        let mut eng = Vec::with_capacity(n);
        let mut heb = Vec::with_capacity(n);
        for _ in 0..n {
            let e = get_varint(&header, &mut pos)?;
            let h = get_varint(&header, &mut pos)?;
            if e > u64::from(u32::MAX) || h > u64::from(u32::MAX) {
                return Err(bad("rank out of range"));
            }
            eng.push(e as u32);
            heb.push(h as u32);
        }
        // `FrozenReach::from_ranks` panics on malformed ranks; a corrupt
        // file must surface as `InvalidData` instead.
        if !is_permutation(&eng) || !is_permutation(&heb) {
            return Err(bad("ranks are not a permutation"));
        }
        let total_events = get_varint(&header, &mut pos)?;
        let word_lo = get_varint(&header, &mut pos)?;
        let span = get_varint(&header, &mut pos)?;
        let word_hi = word_lo.checked_add(span).ok_or_else(|| bad("bad bounds"))?;
        let buckets = get_varint(&header, &mut pos)? as usize;
        if buckets != HIST_BUCKETS {
            return Err(bad(format!(
                "bad histogram size {buckets} (expected {HIST_BUCKETS})"
            )));
        }
        let mut hist = Vec::with_capacity(buckets);
        for _ in 0..buckets {
            hist.push(get_varint(&header, &mut pos)?);
        }
        // Optional lineage block: headers written without a parent table end
        // at the histogram; otherwise exactly one parent entry per strand.
        let mut parents: Vec<u32> = Vec::new();
        if pos != header.len() {
            parents.reserve(n);
            for i in 0..n {
                let v = get_varint(&header, &mut pos)?;
                let par = if v == 0 {
                    stint_sporder::NO_PARENT
                } else {
                    let par = v - 1;
                    if par >= n as u64 || par as usize == i {
                        return Err(bad("parent entry out of range or self-referential"));
                    }
                    par as u32
                };
                parents.push(par);
            }
        }
        if pos != header.len() {
            return Err(bad("trailing bytes in header"));
        }
        let mut reach = FrozenReach::from_ranks(eng, heb);
        if !parents.is_empty() {
            reach = reach.with_parents(parents);
        }
        Ok(CompressedTraceReader {
            r,
            reach,
            total_events,
            word_lo,
            word_hi,
            hist,
            events_seen: 0,
            bytes_read: 0,
            chunks_read: 0,
            scratch: Vec::new(),
        })
    }

    /// Compressed payload + framing bytes consumed so far (excluding the
    /// magic line and header).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Chunks decoded so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks_read
    }

    /// Decode the next chunk of runs into `out` (clearing it first).
    /// Returns `false` once every event was yielded. Truncated input,
    /// checksum mismatches, and run/event-count disagreements are
    /// `InvalidData` errors.
    pub fn next_chunk(&mut self, out: &mut Vec<EventRun>) -> io::Result<bool> {
        out.clear();
        if self.events_seen >= self.total_events {
            return Ok(false);
        }
        let run_count = read_varint(&mut self.r).map_err(|_| bad("truncated chunk frame"))?;
        let payload_len = read_varint(&mut self.r).map_err(|_| bad("truncated chunk frame"))?;
        let want_sum = read_varint(&mut self.r).map_err(|_| bad("truncated chunk frame"))?;
        if payload_len > 64 << 20 {
            return Err(bad("unreasonable chunk length"));
        }
        let mut framed = std::mem::take(&mut self.scratch);
        framed.resize(payload_len as usize, 0);
        let res = self.r.read_exact(&mut framed);
        if res.is_err() {
            self.scratch = framed;
            return Err(bad("truncated chunk payload"));
        }
        if fnv1a(&framed) != want_sum {
            self.scratch = framed;
            return Err(bad("chunk checksum mismatch"));
        }
        let mut pos = 0usize;
        let mut prev_addr = 0usize;
        let mut decoded = 0u64;
        for _ in 0..run_count {
            let run = decode_run(&framed, &mut pos, &mut prev_addr);
            let run = match run {
                Ok(r) => r,
                Err(e) => {
                    self.scratch = framed;
                    return Err(e);
                }
            };
            decoded += run.count;
            out.push(run);
        }
        if pos != framed.len() {
            self.scratch = framed;
            return Err(bad("trailing bytes in chunk"));
        }
        self.events_seen += decoded;
        if self.events_seen > self.total_events {
            self.scratch = framed;
            return Err(bad("chunk yields more events than the header declared"));
        }
        self.bytes_read += payload_len + 3; // framing varints are >= 3 bytes
        self.chunks_read += 1;
        self.scratch = framed;
        Ok(true)
    }

    /// Every chunk was read and the stream yielded exactly the declared
    /// event count. Call after `next_chunk` returns `false`.
    pub fn finished(&self) -> io::Result<()> {
        if self.events_seen != self.total_events {
            return Err(bad(format!(
                "trace ends after {} of {} events",
                self.events_seen, self.total_events
            )));
        }
        Ok(())
    }
}

fn decode_run(buf: &[u8], pos: &mut usize, prev_addr: &mut usize) -> io::Result<EventRun> {
    let tag = *buf.get(*pos).ok_or_else(|| bad("truncated run"))?;
    *pos += 1;
    let op = *OP_TAGS
        .get(tag as usize)
        .ok_or_else(|| bad("unknown event op"))?;
    let strand = get_varint(buf, pos)?;
    if strand > u64::from(u32::MAX) {
        return Err(bad("strand id out of range"));
    }
    let mut run = EventRun {
        op,
        strand: StrandId(strand as u32),
        addr: 0,
        bytes: 0,
        count: 1,
        stride: 0,
    };
    if op != TraceOp::StrandEnd {
        let delta = get_zigzag(buf, pos)?;
        run.addr = (*prev_addr as i64).wrapping_add(delta) as usize;
        run.bytes = get_varint(buf, pos)? as usize;
        if !matches!(op, TraceOp::Free) {
            run.count = get_varint(buf, pos)?;
            if run.count == 0 {
                return Err(bad("empty run"));
            }
            if run.count > 1 {
                run.stride = get_zigzag(buf, pos)?;
            }
        }
        *prev_addr = run.last_addr();
    }
    Ok(run)
}

/// Load a whole compressed trace into memory (the non-streaming path used
/// by `trace replay --variant stint` and the round-trip tests).
pub fn load_compressed<R: BufRead>(r: R) -> io::Result<PortableTrace> {
    let mut reader = CompressedTraceReader::open(r)?;
    load_rest(&mut reader)
}

pub(crate) fn load_rest<R: BufRead>(
    reader: &mut CompressedTraceReader<R>,
) -> io::Result<PortableTrace> {
    let mut events = Vec::with_capacity(reader.total_events.min(1 << 24) as usize);
    let mut runs = Vec::new();
    while reader.next_chunk(&mut runs)? {
        for run in &runs {
            run.expand_into(&mut events);
        }
    }
    reader.finished()?;
    Ok(PortableTrace {
        trace: Trace { events },
        reach: reader.reach.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cilk, CilkProgram};

    struct Strided;
    impl CilkProgram for Strided {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| {
                for i in 0..100usize {
                    c.store(0x1000 + i * 8, 8);
                }
            });
            for i in 0..100usize {
                ctx.load(0x1000 + i * 8, 8);
            }
            ctx.sync();
            ctx.free(0x1000, 64);
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let pt = PortableTrace::record(&mut Strided);
        for chunk in [1usize, 7, 64, 100_000] {
            let mut buf = Vec::new();
            let st = save_compressed(&pt, &mut buf, chunk).unwrap();
            assert_eq!(st.events, pt.trace.len() as u64);
            assert!(st.runs < st.events, "strided accesses must coalesce");
            let back = load_compressed(&buf[..]).unwrap();
            assert_eq!(back.trace.events, pt.trace.events, "chunk={chunk}");
            assert_eq!(back.reach, pt.reach);
        }
    }

    #[test]
    fn compresses_well_below_half_of_v1() {
        let pt = PortableTrace::record(&mut Strided);
        let mut v1 = Vec::new();
        pt.save(&mut v1).unwrap();
        let mut v2 = Vec::new();
        save_compressed(&pt, &mut v2, DEFAULT_CHUNK_EVENTS).unwrap();
        assert!(
            v2.len() * 2 < v1.len(),
            "v2 {} bytes not under half of v1 {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn wholesale_range_matches_word_coverage() {
        let run = EventRun {
            op: TraceOp::Store,
            strand: StrandId(3),
            addr: 0x100,
            bytes: 8,
            count: 10,
            stride: 8,
        };
        assert_eq!(
            run.as_wholesale_range(),
            Some((TraceOp::StoreRange, 0x100, 80))
        );
        // Overlapping or gapped strides must decode event by event.
        for s in [4i64, 12, -8] {
            let r = EventRun { stride: s, ..run };
            assert_eq!(r.as_wholesale_range(), None, "stride {s}");
        }
        // Unaligned runs fall back too.
        let r = EventRun { addr: 0x101, ..run };
        assert_eq!(r.as_wholesale_range(), None);
    }

    #[test]
    fn truncation_and_bitflips_are_invalid_data() {
        let pt = PortableTrace::record(&mut Strided);
        let mut buf = Vec::new();
        save_compressed(&pt, &mut buf, 32).unwrap();
        // Truncate at several depths: header, mid-chunk, last chunk.
        for frac in [1usize, 3, 7] {
            let cut = buf.len() * frac / 8;
            assert!(
                load_compressed(&buf[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // Flip one bit in every region of the file; decoding must fail (a
        // flip in a varint length/checksum or payload is always caught by
        // the framing checks).
        for at in [20usize, buf.len() / 2, buf.len() - 4] {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            assert!(load_compressed(&bad[..]).is_err(), "bit flip at {at}");
        }
    }

    #[test]
    fn header_carries_partition_index() {
        let pt = PortableTrace::record(&mut Strided);
        let mut buf = Vec::new();
        save_compressed(&pt, &mut buf, 64).unwrap();
        let reader = CompressedTraceReader::open(&buf[..]).unwrap();
        let (bounds, hist) = partition_index(&pt.trace);
        let (lo, hi) = bounds.unwrap();
        assert_eq!((reader.word_lo, reader.word_hi), (lo, hi));
        assert_eq!(reader.hist, hist);
        assert_eq!(
            reader.hist.iter().sum::<u64>(),
            pt.trace
                .events
                .iter()
                .filter(|e| e.op != TraceOp::StrandEnd)
                .count() as u64
        );
    }
}
