//! The `comp+rts` detector variant (Section 5): compile-time **and** runtime
//! coalescing feeding the *word-granularity* hashmap access history.
//!
//! During a strand, all hooks only set bits in the two [`BitShadow`] tables
//! (cheap). At strand end, the maximal disjoint intervals are extracted —
//! already spatially coalesced and deduplicated — and each is replayed
//! word-by-word against the [`WordShadow`] access history ("the access
//! history in both comp+rts and compiler handles a given interval at
//! four-byte granularity"). The benefit over `compiler` is fewer and larger
//! top-level calls plus deduplication; the per-word hashmap cost remains.

use crate::report::RaceReport;
use crate::stats::DetectorStats;
use crate::timing::FlushTimer;
use crate::word_logic::{replay_interval, WordOp};
use crate::{HotPath, ResourceBudget};
use stint_cilk::{word_range, Detector};
use stint_faults::DetectorError;
use stint_shadow::{BitShadow, SetFilter, WordIv, WordShadow};
use stint_sporder::{ReachCache, Reachability, StrandId};

/// Runtime-coalescing detector over the word-granularity access history.
pub struct CompRtsDetector {
    reads: BitShadow,
    writes: BitShadow,
    read_filter: SetFilter,
    write_filter: SetFilter,
    shadow: WordShadow,
    scratch: Vec<WordIv>,
    hot: HotPath,
    cache: ReachCache,
    timer: FlushTimer,
    /// Injected fault: panic at the Nth strand-end flush (sampled from the
    /// process fault plan at construction time).
    panic_at_flush: Option<u64>,
    pub report: RaceReport,
    pub stats: DetectorStats,
}

impl CompRtsDetector {
    pub fn new(report: RaceReport) -> Self {
        CompRtsDetector {
            reads: BitShadow::new(),
            writes: BitShadow::new(),
            read_filter: SetFilter::new(),
            write_filter: SetFilter::new(),
            shadow: WordShadow::new(),
            scratch: Vec::new(),
            hot: HotPath::default(),
            cache: ReachCache::new(),
            timer: FlushTimer::default(),
            panic_at_flush: if stint_faults::is_active() {
                stint_faults::panic_at_flush()
            } else {
                None
            },
            report,
            stats: DetectorStats::default(),
        }
    }

    /// Select which hot-path optimizations to use (default: all on).
    pub fn with_hot_path(mut self, hot: HotPath) -> Self {
        self.hot = hot;
        if !hot.gated_timing {
            self.timer = FlushTimer::full();
        }
        self
    }

    /// Enable verifiable-witness capture (see [`crate::witness`]).
    pub fn with_witnesses(mut self, on: bool) -> Self {
        self.report.set_witness_capture(on);
        self
    }

    /// The strand-end flush, shared by the `strand_end` hook, `free`, and
    /// `finish`. Internal callers must NOT `observe` (only real hook
    /// invocations are trace events).
    fn flush<R: Reachability>(&mut self, s: StrandId, reach: &R) {
        if self.reads.is_clear() && self.writes.is_clear() {
            return;
        }
        self.stats.strands_flushed += 1;
        if self.panic_at_flush == Some(self.stats.strands_flushed) {
            panic!("injected flush panic (fault plan panic-at-flush)");
        }
        let t0 = self.timer.begin();
        let _span = stint_obs::span("comprts.flush");
        self.cache.begin_strand(s);
        // Reads first: queries must observe the pre-strand history (a
        // strand's own write must not mask an earlier writer its read races
        // with — see DESIGN.md §3).
        let mut ivs = std::mem::take(&mut self.scratch);
        ivs.clear();
        self.reads.extract_and_clear(&mut ivs);
        self.read_filter.reset();
        for &(lo, hi) in &ivs {
            self.stats.read.intervals += 1;
            self.stats.read.interval_bytes += (hi - lo) * 4;
            replay_interval(
                &mut self.shadow,
                WordOp::Read,
                lo,
                hi,
                s,
                reach,
                self.hot,
                &mut self.cache,
                &mut self.report,
            );
        }
        ivs.clear();
        self.writes.extract_and_clear(&mut ivs);
        self.write_filter.reset();
        for &(lo, hi) in &ivs {
            self.stats.write.intervals += 1;
            self.stats.write.interval_bytes += (hi - lo) * 4;
            replay_interval(
                &mut self.shadow,
                WordOp::Write,
                lo,
                hi,
                s,
                reach,
                self.hot,
                &mut self.cache,
                &mut self.report,
            );
        }
        ivs.clear();
        self.scratch = ivs;
        self.timer.end(t0, &mut self.stats.ah_time);
    }

    /// Apply resource budgets. On exhaustion the [`WordShadow`] degrades to
    /// an always-empty sink page and the [`BitShadow`] coalescers drop bits
    /// (both sound: no false races); the first failure surfaces via
    /// [`Detector::failure`].
    pub fn with_budget(mut self, b: ResourceBudget) -> Self {
        if let Some(bytes) = b.max_shadow_bytes {
            self.shadow.set_page_cap(bytes / WordShadow::BYTES_PER_PAGE);
            self.reads.set_chunk_cap(bytes / BitShadow::BYTES_PER_CHUNK);
            self.writes
                .set_chunk_cap(bytes / BitShadow::BYTES_PER_CHUNK);
        }
        self
    }
}

impl<R: Reachability> Detector<R> for CompRtsDetector {
    #[inline]
    fn load(&mut self, s: StrandId, addr: usize, bytes: usize, _reach: &R) {
        self.report.observe(s, true);
        let (lo, hi) = word_range(addr, bytes);
        self.stats.read.hooks += 1;
        self.stats.read.hook_bytes += bytes as u64;
        self.stats.read.words += hi - lo;
        // The bit table is monotone until the strand-end flush, so a range
        // the filter has seen set this strand can skip it entirely.
        if self.hot.batched {
            if !self.read_filter.covers(lo, hi) {
                self.reads.set_range(lo, hi);
                if lo < hi {
                    self.read_filter.record(lo, hi);
                }
            }
        } else {
            self.reads.set_range(lo, hi);
        }
    }

    #[inline]
    fn store(&mut self, s: StrandId, addr: usize, bytes: usize, _reach: &R) {
        self.report.observe(s, true);
        let (lo, hi) = word_range(addr, bytes);
        self.stats.write.hooks += 1;
        self.stats.write.hook_bytes += bytes as u64;
        self.stats.write.words += hi - lo;
        if self.hot.batched {
            if !self.write_filter.covers(lo, hi) {
                self.writes.set_range(lo, hi);
                if lo < hi {
                    self.write_filter.record(lo, hi);
                }
            }
        } else {
            self.writes.set_range(lo, hi);
        }
    }

    fn free(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &R) {
        self.report.observe(s, false);
        // Flush the strand's pending accesses first (they really happened and
        // must be checked/recorded before the region's history is erased);
        // flushing mid-strand with the same strand id is semantics-preserving.
        self.flush(s, reach);
        let (lo, hi) = word_range(addr, bytes);
        self.shadow.clear_range(lo, hi);
    }

    fn strand_end(&mut self, s: StrandId, reach: &R) {
        self.report.observe(s, false);
        self.flush(s, reach);
    }

    fn finish(&mut self, s: StrandId, reach: &R) {
        // Not a trace event: flush without `observe`.
        self.flush(s, reach);
        self.stats.hash_ops = self.shadow.ops;
        self.stats.reach_hits = self.cache.hits;
        self.stats.reach_misses = self.cache.misses;
        self.stats.reach_flushes = self.cache.flushes;
        self.stats.page_batches = self.shadow.batches;
        self.stats.page_batch_words = self.shadow.batched_words;
        self.stats.hook_filter_hits = self.read_filter.hits + self.write_filter.hits;
        self.stats.ah_bytes = self.shadow.heap_bytes();
        self.stats.coalesce_bytes = self.reads.heap_bytes() + self.writes.heap_bytes();
    }

    fn failure(&self) -> Option<DetectorError> {
        self.shadow
            .exhausted()
            .or_else(|| self.reads.exhausted())
            .or_else(|| self.writes.exhausted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_cilk::{run_with_detector, Cilk, CilkProgram};

    struct RacyPair;
    impl CilkProgram for RacyPair {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| c.store(100, 4));
            ctx.store(100, 4);
            ctx.sync();
        }
    }

    #[test]
    fn detects_simple_race() {
        let det = CompRtsDetector::new(RaceReport::default());
        let (ex, _) = run_with_detector(&mut RacyPair, det);
        assert_eq!(ex.det.report.racy_words(), vec![25]);
    }

    /// Repeated and adjacent accesses within a strand must collapse into one
    /// interval (temporal + spatial coalescing).
    struct Chatty;
    impl CilkProgram for Chatty {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            for _ in 0..100 {
                for i in 0..8usize {
                    ctx.store(i * 4, 4);
                }
            }
            ctx.spawn(|_| {});
            ctx.sync();
        }
    }

    #[test]
    fn dedup_and_coalescing() {
        let det = CompRtsDetector::new(RaceReport::default());
        let (ex, _) = run_with_detector(&mut Chatty, det);
        let d = &ex.det;
        assert_eq!(d.stats.write.hooks, 800);
        assert_eq!(d.stats.write.words, 800);
        assert_eq!(d.stats.write.intervals, 1, "one coalesced interval");
        assert_eq!(d.stats.write.interval_bytes, 32);
        // The hashmap saw each deduplicated word once.
        assert_eq!(d.stats.hash_ops, 8);
        assert!(d.report.is_race_free());
    }

    /// A strand that reads a word before writing it must still race with an
    /// earlier parallel writer (reads processed before writes at flush).
    struct ReadThenWriteRace;
    impl CilkProgram for ReadThenWriteRace {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| c.store(64, 4));
            ctx.load(64, 4);
            ctx.store(64, 4);
            ctx.sync();
        }
    }

    #[test]
    fn own_write_does_not_mask_read_race() {
        let det = CompRtsDetector::new(RaceReport::default());
        let (ex, _) = run_with_detector(&mut ReadThenWriteRace, det);
        assert_eq!(ex.det.report.racy_words(), vec![16]);
    }
}
