//! The **STINT** detector variant: compile-time + runtime coalescing with
//! the *interval-based* access history of Section 4.
//!
//! During a strand, hooks set bits in the [`BitShadow`] coalescers exactly as
//! in `comp+rts`. At strand end the extracted intervals go to two interval
//! stores (read tree / write tree) instead of being replayed word-by-word:
//!
//! 1. every **read** interval is checked (query-only) against the write tree
//!    — a parallel last writer of any overlapped region is a write-read race
//!    — and then inserted into the read tree, where the leftmost reader of
//!    each overlapped region is kept;
//! 2. every **write** interval is checked (query-only) against the read tree
//!    (read-write races) and then inserted into the write tree, reporting
//!    write-write races against every overlapped previous writer.
//!
//! Reads are processed before writes so that all queries observe the
//! pre-strand history (a strand's intervals never conflict with themselves:
//! same strand ⇒ series).
//!
//! The detector is generic over the [`IntervalStore`] implementation: the
//! paper's treap by default ([`StintDetector`]), or the `BTreeMap` reference
//! store ([`StintFlatDetector`]) as the "any balanced BST" ablation.

use crate::report::{RaceKind, RaceReport};
use crate::stats::DetectorStats;
use crate::timing::FlushTimer;
use crate::{HotPath, ResourceBudget};
use stint_cilk::{word_range, Detector};
use stint_faults::{DetectorError, Resource};
use stint_ivtree::{FlatStore, Interval, IntervalStore, Treap};
use stint_shadow::{BitShadow, SetFilter, WordIv};
use stint_sporder::{ReachCache, Reachability, StrandId};

/// Pseudo-accessor recorded over freed regions: it conflicts with nothing
/// and is always replaced by real accesses (allocator `free` integration).
pub const TOMBSTONE: StrandId = StrandId(u32::MAX);

/// STINT with the paper's treap access history.
pub type StintDetector = IntervalDetector<Treap<StrandId>>;
/// STINT with the `BTreeMap` reference access history (ablation).
pub type StintFlatDetector = IntervalDetector<FlatStore<StrandId>>;

/// Interval-based detector, generic over the access-history store.
pub struct IntervalDetector<S> {
    reads: BitShadow,
    writes: BitShadow,
    read_filter: SetFilter,
    write_filter: SetFilter,
    read_tree: S,
    write_tree: S,
    scratch_r: Vec<WordIv>,
    scratch_w: Vec<WordIv>,
    hot: HotPath,
    cache: ReachCache,
    timer: FlushTimer,
    /// Interval budget (read tree + write tree); `None` = unbounded.
    max_intervals: Option<u64>,
    /// First structured failure; once set the detector is *dead*: hooks and
    /// flushes no-op, freezing the (sound) history at the failure point.
    failure: Option<DetectorError>,
    /// Injected fault: panic at the Nth strand-end flush (sampled from the
    /// process fault plan at construction time).
    panic_at_flush: Option<u64>,
    pub report: RaceReport,
    pub stats: DetectorStats,
}

/// Reachability queries of a strand-end flush, optionally memoized. All
/// queries during a flush share the current strand `s`, which is what makes
/// the [`ReachCache`] applicable.
struct Queries<'a, R> {
    reach: &'a R,
    s: StrandId,
    cache: Option<&'a mut ReachCache>,
}

impl<R: Reachability> Queries<'_, R> {
    #[inline]
    fn parallel(&mut self, old: StrandId) -> bool {
        match &mut self.cache {
            Some(c) => c.parallel_with_cur(old, self.reach),
            None => self.reach.parallel(old, self.s),
        }
    }

    #[inline]
    fn cur_left_of(&mut self, old: StrandId) -> bool {
        match &mut self.cache {
            Some(c) => c.cur_left_of(old, self.reach),
            None => self.reach.left_of(self.s, old),
        }
    }
}

impl IntervalDetector<Treap<StrandId>> {
    pub fn new(report: RaceReport) -> Self {
        Self::with_stores(
            Treap::with_seed(0x57A7_157A_7157_0001),
            Treap::with_seed(0x57A7_157A_7157_0002),
            report,
        )
    }
}

impl IntervalDetector<FlatStore<StrandId>> {
    pub fn new_flat(report: RaceReport) -> Self {
        Self::with_stores(FlatStore::new(), FlatStore::new(), report)
    }
}

impl<S: IntervalStore<StrandId>> IntervalDetector<S> {
    pub fn with_stores(read_tree: S, write_tree: S, report: RaceReport) -> Self {
        IntervalDetector {
            reads: BitShadow::new(),
            writes: BitShadow::new(),
            read_filter: SetFilter::new(),
            write_filter: SetFilter::new(),
            read_tree,
            write_tree,
            scratch_r: Vec::new(),
            scratch_w: Vec::new(),
            hot: HotPath::default(),
            cache: ReachCache::new(),
            timer: FlushTimer::default(),
            max_intervals: None,
            failure: None,
            panic_at_flush: if stint_faults::is_active() {
                stint_faults::panic_at_flush()
            } else {
                None
            },
            report,
            stats: DetectorStats::default(),
        }
    }

    /// Select which hot-path optimizations to use (default: all on). The
    /// interval detector has no word-replay loop; here [`HotPath::batched`]
    /// enables the hook-side redundant-`set_range` filter (a load/store
    /// whose word range is already set in the bit table this strand skips
    /// the table entirely), while [`HotPath::reach_cache`] and
    /// [`HotPath::gated_timing`] work as in the word-granularity detectors.
    pub fn with_hot_path(mut self, hot: HotPath) -> Self {
        self.hot = hot;
        if !hot.gated_timing {
            self.timer = FlushTimer::full();
        }
        self
    }

    /// Apply resource budgets. A shadow-byte budget caps the coalescing bit
    /// tables (which drop bits soundly on exhaustion); an interval budget is
    /// enforced after each flush — the flush that crosses it completes, then
    /// the detector goes dead with its history frozen at that point.
    pub fn with_budget(mut self, b: ResourceBudget) -> Self {
        if let Some(bytes) = b.max_shadow_bytes {
            self.reads.set_chunk_cap(bytes / BitShadow::BYTES_PER_CHUNK);
            self.writes
                .set_chunk_cap(bytes / BitShadow::BYTES_PER_CHUNK);
        }
        self.max_intervals = b.max_intervals;
        self
    }

    /// Enable verifiable-witness capture (see [`crate::witness`]).
    pub fn with_witnesses(mut self, on: bool) -> Self {
        self.report.set_witness_capture(on);
        self
    }

    /// Current sizes of the (read, write) interval stores.
    pub fn tree_sizes(&self) -> (usize, usize) {
        (self.read_tree.len(), self.write_tree.len())
    }

    /// Access the read-interval store (tests/benches).
    pub fn read_tree(&self) -> &S {
        &self.read_tree
    }
    /// Access the write-interval store (tests/benches).
    pub fn write_tree(&self) -> &S {
        &self.write_tree
    }
}

impl<S: IntervalStore<StrandId>, R: Reachability> Detector<R> for IntervalDetector<S> {
    #[inline]
    fn load(&mut self, s: StrandId, addr: usize, bytes: usize, _reach: &R) {
        self.report.observe(s, true);
        if self.failure.is_some() {
            return; // dead: history frozen at the failure point
        }
        let (lo, hi) = word_range(addr, bytes);
        self.stats.read.hooks += 1;
        self.stats.read.hook_bytes += bytes as u64;
        self.stats.read.words += hi - lo;
        // The bit table is monotone until the strand-end flush, so a range
        // the filter has seen set this strand can skip it entirely.
        if self.hot.batched {
            if !self.read_filter.covers(lo, hi) {
                self.reads.set_range(lo, hi);
                if lo < hi {
                    self.read_filter.record(lo, hi);
                }
            }
        } else {
            self.reads.set_range(lo, hi);
        }
    }

    #[inline]
    fn store(&mut self, s: StrandId, addr: usize, bytes: usize, _reach: &R) {
        self.report.observe(s, true);
        if self.failure.is_some() {
            return; // dead: history frozen at the failure point
        }
        let (lo, hi) = word_range(addr, bytes);
        self.stats.write.hooks += 1;
        self.stats.write.hook_bytes += bytes as u64;
        self.stats.write.words += hi - lo;
        if self.hot.batched {
            if !self.write_filter.covers(lo, hi) {
                self.writes.set_range(lo, hi);
                if lo < hi {
                    self.write_filter.record(lo, hi);
                }
            }
        } else {
            self.writes.set_range(lo, hi);
        }
    }

    fn free(&mut self, s: StrandId, addr: usize, bytes: usize, reach: &R) {
        self.report.observe(s, false);
        if self.failure.is_some() {
            return; // dead: history frozen at the failure point
        }
        // Flush pending accesses (they must be checked before the region's
        // history is erased), then blanket both trees with a tombstone.
        self.flush(s, reach);
        let (lo, hi) = word_range(addr, bytes);
        if lo < hi {
            self.read_tree
                .insert_write(Interval::new(lo, hi, TOMBSTONE), |_, _, _| {});
            self.write_tree
                .insert_write(Interval::new(lo, hi, TOMBSTONE), |_, _, _| {});
        }
    }

    fn strand_end(&mut self, s: StrandId, reach: &R) {
        self.report.observe(s, false);
        self.flush(s, reach);
    }

    fn finish(&mut self, s: StrandId, reach: &R) {
        // Not a trace event: flush without `observe`.
        self.flush(s, reach);
        let mut t = self.read_tree.stats();
        t.merge(&self.write_tree.stats());
        self.stats.treap = t;
        self.stats.reach_hits = self.cache.hits;
        self.stats.reach_misses = self.cache.misses;
        self.stats.reach_flushes = self.cache.flushes;
        self.stats.hook_filter_hits = self.read_filter.hits + self.write_filter.hits;
        self.stats.ah_bytes = t.bytes;
        self.stats.coalesce_bytes = self.reads.heap_bytes() + self.writes.heap_bytes();
        self.stats.treap_inserts = t.inserts;
        self.stats.treap_len_hw = t.len_hw;
    }

    fn failure(&self) -> Option<DetectorError> {
        self.failure
            .clone()
            .or_else(|| self.reads.exhausted())
            .or_else(|| self.writes.exhausted())
    }
}

impl<S: IntervalStore<StrandId>> IntervalDetector<S> {
    /// The strand-end flush, shared by the `strand_end` hook, `free`, and
    /// `finish`. Internal callers must NOT `observe` (only real hook
    /// invocations are trace events).
    fn flush<R: Reachability>(&mut self, s: StrandId, reach: &R) {
        if self.failure.is_some() || (self.reads.is_clear() && self.writes.is_clear()) {
            return;
        }
        self.stats.strands_flushed += 1;
        if self.panic_at_flush == Some(self.stats.strands_flushed) {
            panic!("injected flush panic (fault plan panic-at-flush)");
        }
        let t0 = self.timer.begin();
        let _span = stint_obs::span("stint.flush");
        if self.hot.reach_cache {
            self.cache.begin_strand(s);
        }
        let mut q = Queries {
            reach,
            s,
            cache: self.hot.reach_cache.then_some(&mut self.cache),
        };
        let mut reads = std::mem::take(&mut self.scratch_r);
        let mut writes = std::mem::take(&mut self.scratch_w);
        reads.clear();
        writes.clear();
        self.reads.extract_and_clear(&mut reads);
        self.writes.extract_and_clear(&mut writes);
        self.read_filter.reset();
        self.write_filter.reset();
        for &(lo, hi) in &reads {
            self.stats.read.intervals += 1;
            self.stats.read.interval_bytes += (hi - lo) * 4;
        }
        for &(lo, hi) in &writes {
            self.stats.write.intervals += 1;
            self.stats.write.interval_bytes += (hi - lo) * 4;
        }

        if self.hot.batched {
            // Batched flush: all cross-tree checks first (they only read the
            // opposite tree), then the strand's whole sorted disjoint run
            // list goes into its own tree as ONE bulk insert — the treap's
            // append fast path turns n root-to-leaf insertions into an O(n)
            // build plus an O(lg n) join whenever the batch lands beyond the
            // stored cover. Checks and inserts touch different trees, so the
            // phase split observes exactly the same history as the
            // interleaved legacy loop below.
            for &(lo, hi) in &reads {
                let report = &mut self.report;
                self.write_tree.query_overlaps(lo, hi, |old, olo, ohi| {
                    if old != TOMBSTONE && q.parallel(old) {
                        report.add_r(RaceKind::WriteRead, olo, ohi, old, s, reach);
                    }
                });
            }
            self.read_tree
                .insert_reads_for(s, &reads, |old| old == TOMBSTONE || q.cur_left_of(old));
            for &(lo, hi) in &writes {
                let report = &mut self.report;
                self.read_tree.query_overlaps(lo, hi, |old, olo, ohi| {
                    if old != TOMBSTONE && q.parallel(old) {
                        report.add_r(RaceKind::ReadWrite, olo, ohi, old, s, reach);
                    }
                });
            }
            let report = &mut self.report;
            self.write_tree
                .insert_writes_for(s, &writes, |old, olo, ohi| {
                    if old != TOMBSTONE && q.parallel(old) {
                        report.add_r(RaceKind::WriteWrite, olo, ohi, old, s, reach);
                    }
                });
        } else {
            // --- Read intervals: check against write tree, insert into read
            // tree. Queries on the same address region as the insert that
            // follows keep the relevant tree paths cache-hot, so the phases
            // stay interleaved per interval.
            for &(lo, hi) in &reads {
                let report = &mut self.report;
                self.write_tree.query_overlaps(lo, hi, |old, olo, ohi| {
                    if old != TOMBSTONE && q.parallel(old) {
                        report.add_r(RaceKind::WriteRead, olo, ohi, old, s, reach);
                    }
                });
                self.read_tree.insert_read(Interval::new(lo, hi, s), |old| {
                    old == TOMBSTONE || q.cur_left_of(old)
                });
            }

            // --- Write intervals: check against read tree, insert into
            // write tree.
            for &(lo, hi) in &writes {
                let report = &mut self.report;
                self.read_tree.query_overlaps(lo, hi, |old, olo, ohi| {
                    if old != TOMBSTONE && q.parallel(old) {
                        report.add_r(RaceKind::ReadWrite, olo, ohi, old, s, reach);
                    }
                });
                let report = &mut self.report;
                self.write_tree
                    .insert_write(Interval::new(lo, hi, s), |old, olo, ohi| {
                        if old != TOMBSTONE && q.parallel(old) {
                            report.add_r(RaceKind::WriteWrite, olo, ohi, old, s, reach);
                        }
                    });
            }
        }
        reads.clear();
        writes.clear();
        self.scratch_r = reads;
        self.scratch_w = writes;
        self.timer.end(t0, &mut self.stats.ah_time);

        // Interval budget: the flush that crosses the cap completes (its
        // checks above already ran against the pre-strand history), then the
        // detector goes dead — sound up to this point.
        if let Some(cap) = self.max_intervals {
            let held = (self.read_tree.len() + self.write_tree.len()) as u64;
            if held > cap {
                self.failure = Some(DetectorError::ResourceExhausted {
                    resource: Resource::Intervals,
                    limit: cap,
                    at_word: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stint_cilk::{run_with_detector, Cilk, CilkProgram};

    struct RacyPair;
    impl CilkProgram for RacyPair {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| c.store(100, 4));
            ctx.store(100, 4);
            ctx.sync();
        }
    }

    #[test]
    fn detects_simple_race_treap_and_flat() {
        let (ex, _) = run_with_detector(&mut RacyPair, StintDetector::new(RaceReport::default()));
        assert_eq!(ex.det.report.racy_words(), vec![25]);
        let (ex, _) = run_with_detector(
            &mut RacyPair,
            StintFlatDetector::new_flat(RaceReport::default()),
        );
        assert_eq!(ex.det.report.racy_words(), vec![25]);
    }

    struct BigRanges;
    impl CilkProgram for BigRanges {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            // Child writes [0,1024) bytes; continuation reads [512, 1536).
            ctx.spawn(|c| c.store_range(0, 1024));
            ctx.load_range(512, 1024);
            ctx.sync();
        }
    }

    #[test]
    fn interval_overlap_race_region() {
        let (ex, _) = run_with_detector(&mut BigRanges, StintDetector::new(RaceReport::default()));
        let d = &ex.det;
        // Overlap is bytes [512,1024) = words [128,256).
        assert_eq!(d.report.racy_words(), (128..256).collect::<Vec<u64>>());
        assert_eq!(d.stats.write.intervals, 1);
        assert_eq!(d.stats.read.intervals, 1);
    }

    /// Read-before-write inside a strand must still race with an earlier
    /// parallel writer.
    struct ReadThenWriteRace;
    impl CilkProgram for ReadThenWriteRace {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            ctx.spawn(|c| c.store(64, 4));
            ctx.load(64, 4);
            ctx.store(64, 4);
            ctx.sync();
        }
    }

    #[test]
    fn own_write_does_not_mask_read_race() {
        let (ex, _) = run_with_detector(
            &mut ReadThenWriteRace,
            StintDetector::new(RaceReport::default()),
        );
        assert_eq!(ex.det.report.racy_words(), vec![16]);
    }

    /// Serial reuse of the same region is race-free and keeps tree sizes
    /// small (intervals replace one another).
    struct SerialReuse;
    impl CilkProgram for SerialReuse {
        fn run<C: Cilk>(&mut self, ctx: &mut C) {
            for _ in 0..50 {
                ctx.spawn(|c| {
                    c.load_range(0, 4096);
                    c.store_range(0, 4096);
                });
                ctx.sync();
            }
        }
    }

    #[test]
    fn serial_reuse_is_race_free_and_compact() {
        let (ex, _) =
            run_with_detector(&mut SerialReuse, StintDetector::new(RaceReport::default()));
        let d = &ex.det;
        assert!(d.report.is_race_free());
        let (r, w) = d.tree_sizes();
        assert_eq!(r, 1, "read tree holds one replacing interval");
        assert_eq!(w, 1, "write tree holds one replacing interval");
    }
}
