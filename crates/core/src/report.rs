//! Race reports.

use std::collections::HashSet;
use stint_sporder::StrandId;

/// The kind of conflicting pair, named `<previous access>-<current access>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RaceKind {
    /// Both accesses are writes.
    WriteWrite,
    /// A recorded read races with the current write.
    ReadWrite,
    /// A recorded write races with the current read.
    WriteRead,
}

impl std::fmt::Display for RaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "write-write"),
            RaceKind::ReadWrite => write!(f, "read-write"),
            RaceKind::WriteRead => write!(f, "write-read"),
        }
    }
}

/// One detected determinacy race on a range of 4-byte words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Race {
    pub kind: RaceKind,
    /// First racy word of the region this report covers.
    pub word_lo: u64,
    /// One past the last racy word of the region.
    pub word_hi: u64,
    /// The previously recorded strand.
    pub prev: StrandId,
    /// The currently executing strand.
    pub cur: StrandId,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} race on words [{:#x}, {:#x}) (bytes [{:#x}, {:#x})): strand {} vs strand {}",
            self.kind,
            self.word_lo,
            self.word_hi,
            self.word_lo * 4,
            self.word_hi * 4,
            self.prev.0,
            self.cur.0
        )
    }
}

/// Accumulated race reports.
///
/// Detailed [`Race`] records are kept up to a cap (racy programs can produce
/// enormous numbers of reports); the total count and — when word collection
/// is enabled — the exact set of racy words are always maintained. The racy
/// word set is what the differential tests compare across detector variants
/// (variants may legally attribute the same racy word to different
/// kinds/pairs; see DESIGN.md §3).
#[derive(Clone, Debug)]
pub struct RaceReport {
    races: Vec<Race>,
    cap: usize,
    /// Total race reports, including those beyond the cap.
    pub total: u64,
    collect_words: bool,
    racy_words: HashSet<u64>,
}

impl Default for RaceReport {
    fn default() -> Self {
        Self::new(10_000, true)
    }
}

impl RaceReport {
    /// A report with no detail cap. The batch detector's per-shard reports
    /// use this so the merged, per-word-normalized report is a function of
    /// the trace alone — a cap would truncate differently at different
    /// shard counts and break the byte-identical merge guarantee.
    pub fn unbounded(collect_words: bool) -> Self {
        Self::new(usize::MAX, collect_words)
    }

    pub fn new(cap: usize, collect_words: bool) -> Self {
        RaceReport {
            races: Vec::new(),
            cap,
            total: 0,
            collect_words,
            racy_words: HashSet::new(),
        }
    }

    /// Record a race covering the word range `[lo, hi)`.
    pub fn add(&mut self, kind: RaceKind, lo: u64, hi: u64, prev: StrandId, cur: StrandId) {
        debug_assert!(lo < hi);
        self.total += 1;
        if self.races.len() < self.cap {
            self.races.push(Race {
                kind,
                word_lo: lo,
                word_hi: hi,
                prev,
                cur,
            });
        }
        if self.collect_words {
            for w in lo..hi {
                self.racy_words.insert(w);
            }
        }
    }

    /// True if no race was detected.
    pub fn is_race_free(&self) -> bool {
        self.total == 0
    }

    /// The recorded reports (capped).
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// The exact set of racy words, sorted (empty if collection is off).
    pub fn racy_words(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.racy_words.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_limits_details_not_totals() {
        let mut r = RaceReport::new(2, true);
        for i in 0..5 {
            r.add(RaceKind::WriteWrite, i, i + 1, StrandId(0), StrandId(1));
        }
        assert_eq!(r.races().len(), 2);
        assert_eq!(r.total, 5);
        assert_eq!(r.racy_words(), vec![0, 1, 2, 3, 4]);
        assert!(!r.is_race_free());
    }

    #[test]
    fn region_expands_to_words() {
        let mut r = RaceReport::default();
        r.add(RaceKind::WriteRead, 10, 14, StrandId(3), StrandId(7));
        assert_eq!(r.racy_words(), vec![10, 11, 12, 13]);
        assert_eq!(r.total, 1);
        let shown = format!("{}", r.races()[0]);
        assert!(shown.contains("write-read"));
        assert!(shown.contains("strand 3"));
    }

    #[test]
    fn word_collection_can_be_disabled() {
        let mut r = RaceReport::new(10, false);
        r.add(RaceKind::WriteWrite, 0, 100, StrandId(0), StrandId(1));
        assert!(r.racy_words().is_empty());
        assert_eq!(r.total, 1);
    }
}
