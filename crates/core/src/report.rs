//! Race reports.

use std::collections::BTreeMap;

use crate::witness::{Provenance, Witness};
use stint_sporder::{Reachability, StrandId};

/// The kind of conflicting pair, named `<previous access>-<current access>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RaceKind {
    /// Both accesses are writes.
    WriteWrite,
    /// A recorded read races with the current write.
    ReadWrite,
    /// A recorded write races with the current read.
    WriteRead,
}

impl std::fmt::Display for RaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "write-write"),
            RaceKind::ReadWrite => write!(f, "read-write"),
            RaceKind::WriteRead => write!(f, "write-read"),
        }
    }
}

/// One detected determinacy race on a range of 4-byte words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Race {
    pub kind: RaceKind,
    /// First racy word of the region this report covers.
    pub word_lo: u64,
    /// One past the last racy word of the region.
    pub word_hi: u64,
    /// The previously recorded strand.
    pub prev: StrandId,
    /// The currently executing strand.
    pub cur: StrandId,
    /// Machine-checkable provenance, when capture was enabled (see
    /// [`crate::witness`]). Boxed: the common path carries no witness and
    /// pays one pointer.
    pub witness: Option<Box<Witness>>,
}

impl Race {
    /// A race record without a witness.
    pub fn new(kind: RaceKind, lo: u64, hi: u64, prev: StrandId, cur: StrandId) -> Race {
        Race {
            kind,
            word_lo: lo,
            word_hi: hi,
            prev,
            cur,
            witness: None,
        }
    }
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Saturating: word indices near `u64::MAX` in an adversarial trace
        // must render, not overflow the `* 4` in debug builds.
        write!(
            f,
            "{} race on words [{:#x}, {:#x}) (bytes [{:#x}, {:#x})): strand {} vs strand {}",
            self.kind,
            self.word_lo,
            self.word_hi,
            self.word_lo.saturating_mul(4),
            self.word_hi.saturating_mul(4),
            self.prev.0,
            self.cur.0
        )
    }
}

/// A sorted, coalesced set of `[lo, hi)` word intervals. A single wide
/// region race costs one entry, not `hi - lo` hash insertions.
#[derive(Clone, Debug, Default)]
struct IntervalSet {
    /// start → end (exclusive); intervals are disjoint and non-abutting.
    runs: BTreeMap<u64, u64>,
}

impl IntervalSet {
    fn insert(&mut self, mut lo: u64, mut hi: u64) {
        debug_assert!(lo < hi);
        // Merge with a predecessor that overlaps or abuts `lo`.
        if let Some((&plo, &phi)) = self.runs.range(..=lo).next_back() {
            if phi >= lo {
                if phi >= hi {
                    return; // already covered
                }
                lo = plo;
                hi = hi.max(phi);
                self.runs.remove(&plo);
            }
        }
        // Absorb successors the new run overlaps or abuts.
        while let Some((&nlo, &nhi)) = self.runs.range(lo..).next() {
            if nlo > hi {
                break;
            }
            hi = hi.max(nhi);
            self.runs.remove(&nlo);
        }
        self.runs.insert(lo, hi);
    }

    fn contains_any(&self) -> bool {
        !self.runs.is_empty()
    }

    fn intervals(&self) -> Vec<(u64, u64)> {
        self.runs.iter().map(|(&l, &h)| (l, h)).collect()
    }

    fn words(&self) -> Vec<u64> {
        self.runs.iter().flat_map(|(&l, &h)| l..h).collect()
    }
}

/// Accumulated race reports.
///
/// Detailed [`Race`] records are kept up to a cap (racy programs can produce
/// enormous numbers of reports); the total count and — when word collection
/// is enabled — the exact set of racy words are always maintained. The racy
/// word set is what the differential tests compare across detector variants
/// (variants may legally attribute the same racy word to different
/// kinds/pairs; see DESIGN.md §3). Words are stored as coalesced sorted
/// intervals, so region-heavy traces don't pay per-word memory.
#[derive(Clone, Debug)]
pub struct RaceReport {
    races: Vec<Race>,
    cap: usize,
    /// Total race reports, including those beyond the cap.
    pub total: u64,
    collect_words: bool,
    racy: IntervalSet,
    /// Witness-capture state; `None` (the default) keeps every hook at one
    /// discriminant check.
    prov: Option<Box<Provenance>>,
}

impl Default for RaceReport {
    fn default() -> Self {
        Self::new(10_000, true)
    }
}

impl RaceReport {
    /// A report with no detail cap. The batch detector's per-shard reports
    /// use this so the merged, per-word-normalized report is a function of
    /// the trace alone — a cap would truncate differently at different
    /// shard counts and break the byte-identical merge guarantee.
    pub fn unbounded(collect_words: bool) -> Self {
        Self::new(usize::MAX, collect_words)
    }

    pub fn new(cap: usize, collect_words: bool) -> Self {
        RaceReport {
            races: Vec::new(),
            cap,
            total: 0,
            collect_words,
            racy: IntervalSet::default(),
            prov: None,
        }
    }

    /// Enable (or disable) witness capture. Off by default; when off the
    /// per-event cost is a single `Option` discriminant check.
    pub fn set_witness_capture(&mut self, on: bool) {
        if on {
            if self.prov.is_none() {
                self.prov = Some(Box::default());
            }
        } else {
            self.prov = None;
        }
    }

    /// True if witness capture is on.
    pub fn witness_capture(&self) -> bool {
        self.prov.is_some()
    }

    /// The capture state, when enabled (event sequence + strand spans).
    pub fn provenance(&self) -> Option<&Provenance> {
        self.prov.as_deref()
    }

    /// Advance the event sequence number for one detector hook invocation.
    /// Detectors call this first in **every** hook (access and control), so
    /// live event ids equal trace indices. Inert when capture is off.
    #[inline]
    pub fn observe(&mut self, s: StrandId, access: bool) {
        if let Some(p) = self.prov.as_deref_mut() {
            p.on_event(s, access);
        }
    }

    /// Record a race covering the word range `[lo, hi)`.
    pub fn add(&mut self, kind: RaceKind, lo: u64, hi: u64, prev: StrandId, cur: StrandId) {
        self.push(Race::new(kind, lo, hi, prev, cur));
    }

    /// Record a pre-built [`Race`], keeping any witness it carries (the
    /// batch merge rebuilds reports from witnessed regions through this).
    pub fn add_race(&mut self, race: Race) {
        self.push(race);
    }

    /// Record a race, capturing a witness from the reachability source when
    /// capture is enabled. Detector race sites call this; `add` is the
    /// witness-less path for callers without a reachability handle.
    pub fn add_r<R: Reachability>(
        &mut self,
        kind: RaceKind,
        lo: u64,
        hi: u64,
        prev: StrandId,
        cur: StrandId,
        reach: &R,
    ) {
        let mut race = Race::new(kind, lo, hi, prev, cur);
        if let Some(p) = self.prov.as_deref() {
            // Only races that will be stored pay for witness construction.
            if self.races.len() < self.cap {
                race.witness = Some(Box::new(p.witness(reach, prev, cur)));
            }
        }
        self.push(race);
    }

    fn push(&mut self, race: Race) {
        debug_assert!(race.word_lo < race.word_hi);
        self.total += 1;
        if self.collect_words {
            self.racy.insert(race.word_lo, race.word_hi);
        }
        if self.races.len() < self.cap {
            self.races.push(race);
        }
    }

    /// True if no race was detected.
    pub fn is_race_free(&self) -> bool {
        self.total == 0
    }

    /// True if detail records were dropped at the cap: `total` counts every
    /// race, `races()` holds only the first `cap`. Rendered and exported
    /// reports surface this explicitly.
    pub fn truncated(&self) -> bool {
        self.total > self.races.len() as u64
    }

    /// The recorded reports (capped).
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// The exact set of racy words, sorted (empty if collection is off).
    pub fn racy_words(&self) -> Vec<u64> {
        debug_assert!(self.collect_words || !self.racy.contains_any());
        self.racy.words()
    }

    /// The racy words as maximal coalesced `[lo, hi)` intervals, sorted.
    pub fn racy_intervals(&self) -> Vec<(u64, u64)> {
        self.racy.intervals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_limits_details_not_totals() {
        let mut r = RaceReport::new(2, true);
        for i in 0..5 {
            r.add(RaceKind::WriteWrite, i, i + 1, StrandId(0), StrandId(1));
        }
        assert_eq!(r.races().len(), 2);
        assert_eq!(r.total, 5);
        assert_eq!(r.racy_words(), vec![0, 1, 2, 3, 4]);
        assert!(!r.is_race_free());
        assert!(r.truncated());
        let uncapped = RaceReport::default();
        assert!(!uncapped.truncated());
    }

    #[test]
    fn region_expands_to_words() {
        let mut r = RaceReport::default();
        r.add(RaceKind::WriteRead, 10, 14, StrandId(3), StrandId(7));
        assert_eq!(r.racy_words(), vec![10, 11, 12, 13]);
        assert_eq!(r.total, 1);
        let shown = format!("{}", r.races()[0]);
        assert!(shown.contains("write-read"));
        assert!(shown.contains("strand 3"));
        assert!(!r.truncated());
    }

    #[test]
    fn word_collection_can_be_disabled() {
        let mut r = RaceReport::new(10, false);
        r.add(RaceKind::WriteWrite, 0, 100, StrandId(0), StrandId(1));
        assert!(r.racy_words().is_empty());
        assert_eq!(r.total, 1);
    }

    #[test]
    fn racy_words_coalesce_into_intervals() {
        let mut r = RaceReport::default();
        r.add(RaceKind::WriteWrite, 10, 20, StrandId(0), StrandId(1));
        r.add(RaceKind::WriteWrite, 30, 35, StrandId(0), StrandId(1));
        r.add(RaceKind::WriteWrite, 18, 30, StrandId(0), StrandId(1)); // bridges
        r.add(RaceKind::WriteWrite, 12, 13, StrandId(0), StrandId(1)); // covered
        r.add(RaceKind::WriteWrite, 35, 36, StrandId(0), StrandId(1)); // abuts
        assert_eq!(r.racy_intervals(), vec![(10, 36)]);
        assert_eq!(r.racy_words(), (10..36).collect::<Vec<u64>>());
        // A single wide region is one interval, not hi-lo entries.
        let mut wide = RaceReport::default();
        wide.add(RaceKind::WriteWrite, 0, 1 << 20, StrandId(0), StrandId(1));
        assert_eq!(wide.racy_intervals().len(), 1);
    }

    #[test]
    fn display_saturates_on_huge_word_addresses() {
        let r = Race::new(
            RaceKind::WriteWrite,
            u64::MAX - 8,
            u64::MAX - 4,
            StrandId(0),
            StrandId(1),
        );
        let shown = format!("{r}");
        assert!(shown.contains("write-write"), "{shown}");
    }
}
