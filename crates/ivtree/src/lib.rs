//! Interval-based access history — the paper's core contribution (Section 4).
//!
//! A race detector's access history must answer, for every new access, "which
//! previously recorded accesses conflict with this one?" and then record the
//! new access. STINT records accesses as *intervals* — contiguous ranges of
//! 4-byte words accessed by a single strand — in two search trees (one for
//! reads, one for writes) that maintain the **non-overlap invariant**: the
//! intervals stored in a tree are pairwise disjoint, because each word has
//! exactly one *last writer* and one *leftmost reader*.
//!
//! Two interchangeable implementations are provided:
//!
//! * [`Treap`] — the paper's randomized balanced BST. Insertion and query of
//!   an interval `x` cost O(h + k), where `h` is the tree height (O(lg n)
//!   w.h.p.) and `k` the number of stored intervals overlapping `x`
//!   (Lemma 4.2). The implementation follows the paper's case analysis:
//!   `INSERTWRITEINTERVAL` cases A–D with `REMOVEOVERLAPLEFT`/`-RIGHT`
//!   (Figures 2–3), and `INSERTREADINTERVAL` with left-of resolution
//!   (Figure 4).
//! * [`FlatStore`] — the same semantics on a `BTreeMap` keyed by interval
//!   start. Simpler and obviously correct; used as the differential-testing
//!   oracle and as the "any balanced BST would work" ablation baseline.
//!
//! Both are generic over the accessor type `A` (the detector instantiates
//! `A = StrandId`); the *left-of* relation needed by read insertion is passed
//! in as a closure, keeping this crate independent of the reachability
//! machinery.
//!
//! # Semantics shared by both stores
//!
//! * `insert_write(x, conflict)` — record `x` in the write tree. The
//!   previous accessor of every overlapped region is reported through
//!   `conflict(old_accessor, lo, hi)`; afterwards `x.who` is the recorded
//!   accessor of `[x.start, x.end)` (the new write is always the *last*
//!   writer, so old intervals are trimmed or removed — paper §4.1).
//! * `insert_read(x, is_new_left_of)` — record `x` in the read tree. For
//!   each overlapped region the recorded accessor becomes whichever of the
//!   old and new reader is *left of* the other, as decided by the
//!   `is_new_left_of(old_accessor)` predicate (paper §4.2). Reads don't
//!   conflict with reads, so no conflicts are reported.
//! * `query_overlaps(lo, hi, f)` — report every stored interval overlapping
//!   `[lo, hi)` without modifying the store (paper §4.3): a write interval is
//!   checked against the read tree, and a read interval against the write
//!   tree, before insertion into its own tree.

pub mod flat;
pub mod treap;

pub use flat::FlatStore;
pub use treap::Treap;

/// An interval of 4-byte words `[start, end)` accessed by `who`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval<A> {
    pub start: u64,
    pub end: u64,
    pub who: A,
}

impl<A> Interval<A> {
    #[inline]
    pub fn new(start: u64, end: u64, who: A) -> Self {
        debug_assert!(start < end, "empty interval");
        Interval { start, end, who }
    }

    /// Length in words.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Operation counters shared by both stores (the paper's Figure 8 reports
/// `ops`, average `visited` nodes per op and average `overlaps` per op).
#[derive(Clone, Copy, Debug, Default)]
pub struct OpStats {
    /// Top-level operations (inserts + queries).
    pub ops: u64,
    /// Tree nodes visited across all operations.
    pub visited: u64,
    /// Overlapping stored intervals encountered across all operations.
    pub overlaps: u64,
    /// Top-level insert operations (Lemma 4.1's `m`).
    pub inserts: u64,
    /// Most intervals stored at once. Per store Lemma 4.1 bounds this by
    /// `2*inserts + 1`; a merge of `k` stores is bounded by `2*inserts + k`.
    pub len_hw: u64,
    /// Heap bytes held by the store when stats were collected (exact for the
    /// treap arena, an occupancy estimate for the B-tree reference store).
    pub bytes: u64,
}

impl OpStats {
    pub fn avg_visited(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.visited as f64 / self.ops as f64
        }
    }
    pub fn avg_overlaps(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.overlaps as f64 / self.ops as f64
        }
    }
    pub fn merge(&mut self, o: &OpStats) {
        self.ops += o.ops;
        self.visited += o.visited;
        self.overlaps += o.overlaps;
        self.inserts += o.inserts;
        self.len_hw += o.len_hw;
        self.bytes += o.bytes;
    }
}

/// Common interface of the two interval stores, so detectors and benches can
/// be generic over the access-history implementation.
pub trait IntervalStore<A: Copy> {
    /// See module docs. `conflict(old_accessor, lo, hi)` is invoked once per
    /// overlapped stored interval with the overlap region.
    fn insert_write(&mut self, x: Interval<A>, conflict: impl FnMut(A, u64, u64));
    /// See module docs. `is_new_left_of(old)` returns true when the *new*
    /// reader is left of the stored reader `old`.
    fn insert_read(&mut self, x: Interval<A>, is_new_left_of: impl FnMut(A) -> bool);
    /// Report every stored interval overlapping `[lo, hi)`:
    /// `f(accessor, overlap_lo, overlap_hi)`.
    fn query_overlaps(&mut self, lo: u64, hi: u64, f: impl FnMut(A, u64, u64));
    /// Number of intervals currently stored.
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// In-order contents.
    fn to_vec(&self) -> Vec<Interval<A>>;
    /// Operation counters.
    fn stats(&self) -> OpStats;

    /// Bulk-record a strand's pre-coalesced write runs: `runs` is the sorted,
    /// pairwise-disjoint word-interval list a coalescing shadow produces at
    /// strand end, all accessed by `who`. Semantically identical to one
    /// [`IntervalStore::insert_write`] per run (the default implementation);
    /// stores may override with a batched fast path.
    fn insert_writes_for(
        &mut self,
        who: A,
        runs: &[(u64, u64)],
        mut conflict: impl FnMut(A, u64, u64),
    ) {
        for &(lo, hi) in runs {
            self.insert_write(Interval::new(lo, hi, who), &mut conflict);
        }
    }

    /// Bulk-record a strand's pre-coalesced read runs (see
    /// [`IntervalStore::insert_writes_for`]; read semantics of
    /// [`IntervalStore::insert_read`]).
    fn insert_reads_for(
        &mut self,
        who: A,
        runs: &[(u64, u64)],
        mut is_new_left_of: impl FnMut(A) -> bool,
    ) {
        for &(lo, hi) in runs {
            self.insert_read(Interval::new(lo, hi, who), &mut is_new_left_of);
        }
    }
}

/// Merge adjacent intervals with equal accessors — the stores may legally
/// fragment a logically contiguous region into touching pieces, so tests
/// compare *normalized* contents.
pub fn normalize<A: Copy + PartialEq>(mut v: Vec<Interval<A>>) -> Vec<Interval<A>> {
    v.sort_by_key(|iv| iv.start);
    let mut out: Vec<Interval<A>> = Vec::with_capacity(v.len());
    for iv in v {
        match out.last_mut() {
            Some(last) if last.end == iv.start && last.who == iv.who => last.end = iv.end,
            _ => out.push(iv),
        }
    }
    out
}
