//! The treap of disjoint intervals (paper Section 4, Figures 2–4).
//!
//! Nodes live in an arena indexed by `u32` and carry a random priority; the
//! tree is a BST on interval start and a max-heap on priority. All paper
//! operations are implemented recursively; rebalancing happens on the unwind
//! (a fresh leaf is rotated up while its priority beats its parent's; a node
//! whose children changed in the split cases is sifted down). Removals splice
//! nodes out along one spine, which cannot violate the heap order.
//!
//! When an existing node is trimmed or has its payload replaced in place
//! (write case D, the "middle piece" of the split cases), it keeps its old
//! priority: priorities are i.i.d. uniform, so the tree's shape distribution
//! is preserved.

use crate::{Interval, IntervalStore, OpStats};

const NIL: u32 = u32::MAX;

// Observability (no-ops costing one relaxed load while `stint-obs` is
// disabled). `ivtree.op_visited` buckets the nodes visited per top-level
// operation — a search-depth proxy; `ivtree.depth` records the exact height
// once per tree when its stats are collected at the end of a run.
static OBS_INSERTS: stint_obs::Counter = stint_obs::Counter::new("ivtree.inserts");
static OBS_QUERIES: stint_obs::Counter = stint_obs::Counter::new("ivtree.queries");
static OBS_ROTATIONS: stint_obs::Counter = stint_obs::Counter::new("ivtree.rotations");
static OBS_NODES: stint_obs::Gauge = stint_obs::Gauge::new("ivtree.nodes");
static OBS_BYTES: stint_obs::Gauge = stint_obs::Gauge::new("ivtree.bytes");
static OBS_OP_VISITED: stint_obs::Histogram = stint_obs::Histogram::new("ivtree.op_visited");
static OBS_DEPTH: stint_obs::Histogram = stint_obs::Histogram::new("ivtree.depth");

#[derive(Clone, Debug)]
struct Node<A> {
    start: u64,
    end: u64,
    who: A,
    prio: u64,
    left: u32,
    right: u32,
}

/// Treap-based interval store. See the crate docs for the semantics.
///
/// ```
/// use stint_ivtree::{Treap, Interval, IntervalStore};
///
/// let mut history: Treap<&str> = Treap::new();
/// history.insert_write(Interval::new(0, 30, "alice"), |_, _, _| {});
/// // Bob overwrites the middle: alice is reported as the previous writer.
/// let mut conflicts = vec![];
/// history.insert_write(Interval::new(10, 20, "bob"), |who, lo, hi| {
///     conflicts.push((who, lo, hi));
/// });
/// assert_eq!(conflicts, [("alice", 10, 20)]);
/// // Alice's interval was split around Bob's.
/// assert_eq!(history.len(), 3);
/// ```
pub struct Treap<A> {
    nodes: Vec<Node<A>>,
    free: Vec<u32>,
    root: u32,
    rng: u64,
    /// `treap-degenerate` fault: draw monotonically increasing priorities,
    /// turning the treap into its worst-case (list-shaped) form so the
    /// degradation machinery is exercised with pathological depth.
    degenerate: bool,
    len: usize,
    /// Most intervals ever stored at once (Lemma 4.1 watermark).
    len_hw: usize,
    stats: OpStats,
    /// Total top-level insert operations (for the Lemma 4.1 bound check).
    inserts: u64,
    /// Arena slot budget: allocation past this raises
    /// [`stint_faults::DetectorError::ResourceExhausted`].
    node_cap: u32,
    /// Conservative cover of every stored interval: the union of all
    /// intervals ever inserted is `[lo_bound, hi_bound)` (trims and removals
    /// only shrink coverage, so the cover never under-estimates). An insert
    /// or query entirely outside it cannot overlap anything — the
    /// key-compare early-out and the bulk append fast path key off this.
    lo_bound: u64,
    hi_bound: u64,
    /// Heap bytes last reported to the `ivtree.bytes`/`ivtree.nodes` gauges
    /// (zero while obs is disabled — `Gauge::reconcile` no-ops).
    owned_bytes: u64,
    owned_nodes: u64,
}

impl<A: Copy> Default for Treap<A> {
    fn default() -> Self {
        Self::with_seed(0x5EED_1234_5678_9ABC)
    }
}

impl<A: Copy> Treap<A> {
    /// Create an empty treap whose priorities are drawn from a splitmix64
    /// stream seeded with `seed` (deterministic for reproducible runs).
    /// Samples the installed fault plan (if any): under `treap-degenerate`
    /// the priorities become monotone and the treap degrades to a list.
    pub fn with_seed(seed: u64) -> Self {
        Treap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            rng: if stint_faults::is_active() && stint_faults::treap_degenerate() {
                0 // monotone counter start; see `next_prio`
            } else {
                seed ^ 0x9E37_79B9_7F4A_7C15
            },
            degenerate: stint_faults::is_active() && stint_faults::treap_degenerate(),
            len: 0,
            len_hw: 0,
            stats: OpStats::default(),
            inserts: 0,
            node_cap: NIL,
            lo_bound: u64::MAX,
            hi_bound: 0,
            owned_bytes: 0,
            owned_nodes: 0,
        }
    }

    pub fn new() -> Self {
        Self::default()
    }

    /// Total insert operations performed (Lemma 4.1: `len() <= 2*inserts+1`).
    pub fn insert_ops(&self) -> u64 {
        self.inserts
    }

    /// Most intervals ever stored at once. Lemma 4.1 bounds the watermark
    /// too: every stored interval was produced by some insert, so
    /// `len_high_water() <= 2*insert_ops() + 1` at all times.
    pub fn len_high_water(&self) -> usize {
        self.len_hw
    }

    /// Cap the node arena at `cap` slots; allocating past it raises the
    /// structured [`stint_faults::DetectorError::ResourceExhausted`] error
    /// instead of aborting, so budget exhaustion stays a clean exit-3.
    pub fn set_node_cap(&mut self, cap: usize) {
        self.node_cap = cap.min(NIL as usize) as u32;
    }

    /// Heap bytes currently owned by the arena (node slab + free list).
    pub fn heap_bytes(&self) -> u64 {
        (self.nodes.capacity() * std::mem::size_of::<Node<A>>()
            + self.free.capacity() * std::mem::size_of::<u32>()) as u64
    }

    /// Publish the arena's live footprint to the `ivtree.*` gauges.
    /// `Gauge::reconcile` is a no-op while obs is disabled, leaving the
    /// `owned_*` shadows untouched so a mid-life enable can't underflow.
    #[inline]
    fn note_mem(&mut self) {
        let (len, bytes) = (self.len as u64, self.heap_bytes());
        OBS_NODES.reconcile(&mut self.owned_nodes, len);
        OBS_BYTES.reconcile(&mut self.owned_bytes, bytes);
    }

    #[inline]
    fn next_prio(&mut self) -> u64 {
        if self.degenerate {
            // Worst-case fault: each new node outranks every older one, so
            // insertion rotates it all the way to the root and the tree is a
            // list. The rng field doubles as the monotone counter.
            self.rng = self.rng.wrapping_add(1);
            return self.rng;
        }
        // splitmix64
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn alloc(&mut self, iv: Interval<A>, prio: u64) -> u32 {
        self.len += 1;
        self.len_hw = self.len_hw.max(self.len);
        let node = Node {
            start: iv.start,
            end: iv.end,
            who: iv.who,
            prio,
            left: NIL,
            right: NIL,
        };
        let slot = if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            let i = self.nodes.len() as u32;
            if i >= self.node_cap {
                self.exhausted();
            }
            self.nodes.push(node);
            i
        };
        self.note_mem();
        slot
    }

    /// Arena slots ran out (either the configured [`Self::set_node_cap`]
    /// budget or the u32 index space). Raise the structured resource error —
    /// the detector's panic boundary converts it into a graceful exit-3.
    #[cold]
    #[inline(never)]
    fn exhausted(&self) -> ! {
        stint_obs::event("fault.intervals_exhausted");
        stint_faults::DetectorError::ResourceExhausted {
            resource: stint_faults::Resource::Intervals,
            limit: self.node_cap as u64,
            at_word: None,
        }
        .raise()
    }

    #[inline]
    fn dealloc(&mut self, t: u32) {
        self.len -= 1;
        self.free.push(t);
        self.note_mem();
    }

    #[inline]
    fn n(&self, t: u32) -> &Node<A> {
        &self.nodes[t as usize]
    }
    #[inline]
    fn nm(&mut self, t: u32) -> &mut Node<A> {
        &mut self.nodes[t as usize]
    }

    /// Right rotation: left child comes up. Returns the new subtree root.
    #[inline]
    fn rotate_right(&mut self, t: u32) -> u32 {
        OBS_ROTATIONS.incr();
        let l = self.n(t).left;
        self.nm(t).left = self.n(l).right;
        self.nm(l).right = t;
        l
    }

    /// Left rotation: right child comes up. Returns the new subtree root.
    #[inline]
    fn rotate_left(&mut self, t: u32) -> u32 {
        OBS_ROTATIONS.incr();
        let r = self.n(t).right;
        self.nm(t).right = self.n(r).left;
        self.nm(r).left = t;
        r
    }

    /// Restore the heap order after `t`'s left child subtree was rebuilt by a
    /// recursive insert. The child subtree is internally heap-consistent but
    /// its nodes may outrank `t`; rotating the child up leaves `t` with a new
    /// left child that may outrank it in turn, so the fix recurses down the
    /// spine (a sift).
    #[inline]
    fn fix_left(&mut self, t: u32) -> u32 {
        let l = self.n(t).left;
        if l != NIL && self.n(l).prio > self.n(t).prio {
            let top = self.rotate_right(t);
            let fixed = self.fix_left(t);
            self.nm(top).right = fixed;
            top
        } else {
            t
        }
    }

    /// Mirror image of [`Self::fix_left`].
    #[inline]
    fn fix_right(&mut self, t: u32) -> u32 {
        let r = self.n(t).right;
        if r != NIL && self.n(r).prio > self.n(t).prio {
            let top = self.rotate_left(t);
            let fixed = self.fix_right(t);
            self.nm(top).left = fixed;
            top
        } else {
            t
        }
    }

    /// Plain treap insertion of an interval known not to overlap anything in
    /// this subtree (used for the split pieces of case C).
    #[inline]
    fn insert_disjoint(&mut self, t: u32, iv: Interval<A>, prio: u64) -> u32 {
        if t == NIL {
            return self.alloc(iv, prio);
        }
        self.stats.visited += 1;
        debug_assert!(iv.end <= self.n(t).start || iv.start >= self.n(t).end);
        if iv.start < self.n(t).start {
            let nl = self.insert_disjoint(self.n(t).left, iv, prio);
            self.nm(t).left = nl;
            self.fix_left(t)
        } else {
            let nr = self.insert_disjoint(self.n(t).right, iv, prio);
            self.nm(t).right = nr;
            self.fix_right(t)
        }
    }

    /// Report every interval in the subtree as fully overlapped and free the
    /// whole subtree (used when REMOVEOVERLAP discards a subtree wholesale).
    fn report_and_free_all(&mut self, t: u32, cb: &mut impl FnMut(A, u64, u64)) {
        if t == NIL {
            return;
        }
        self.stats.visited += 1;
        self.stats.overlaps += 1;
        let (l, r) = (self.n(t).left, self.n(t).right);
        let (s, e, who) = {
            let n = self.n(t);
            (n.start, n.end, n.who)
        };
        cb(who, s, e);
        self.report_and_free_all(l, cb);
        self.report_and_free_all(r, cb);
        self.dealloc(t);
    }

    /// REMOVEOVERLAPLEFT (paper Figure 3): called on the left subtree of a
    /// node that `x` replaced; the invariant is that `x` sits at an ancestor
    /// to the right and extends at least as far right as anything here
    /// (`x.end >= z.end` for all subtree nodes `z`).
    fn remove_overlap_left(
        &mut self,
        t: u32,
        x_start: u64,
        cb: &mut impl FnMut(A, u64, u64),
    ) -> u32 {
        if t == NIL {
            return NIL;
        }
        self.stats.visited += 1;
        let (zs, ze) = (self.n(t).start, self.n(t).end);
        if ze <= x_start {
            // Case A: no overlap; only the right subtree can overlap.
            let nr = self.remove_overlap_left(self.n(t).right, x_start, cb);
            self.nm(t).right = nr;
            t
        } else if zs < x_start {
            // Case B: partial overlap; trim z, and the entire right subtree
            // overlaps x and is removed.
            self.stats.overlaps += 1;
            let who = self.n(t).who;
            cb(who, x_start, ze);
            self.nm(t).end = x_start;
            let r = self.n(t).right;
            self.report_and_free_all(r, cb);
            self.nm(t).right = NIL;
            t
        } else {
            // Case C: x fully covers z; remove z and its right subtree,
            // splice in the left subtree and keep looking there.
            self.stats.overlaps += 1;
            let who = self.n(t).who;
            cb(who, zs, ze);
            let (l, r) = (self.n(t).left, self.n(t).right);
            self.report_and_free_all(r, cb);
            self.dealloc(t);
            self.remove_overlap_left(l, x_start, cb)
        }
    }

    /// Mirror image of [`Self::remove_overlap_left`] for the right subtree:
    /// `x` sits at an ancestor to the left and `x.start <= z.start` holds for
    /// all subtree nodes `z`.
    fn remove_overlap_right(
        &mut self,
        t: u32,
        x_end: u64,
        cb: &mut impl FnMut(A, u64, u64),
    ) -> u32 {
        if t == NIL {
            return NIL;
        }
        self.stats.visited += 1;
        let (zs, ze) = (self.n(t).start, self.n(t).end);
        if zs >= x_end {
            let nl = self.remove_overlap_right(self.n(t).left, x_end, cb);
            self.nm(t).left = nl;
            t
        } else if ze > x_end {
            self.stats.overlaps += 1;
            let who = self.n(t).who;
            cb(who, zs, x_end);
            self.nm(t).start = x_end;
            let l = self.n(t).left;
            self.report_and_free_all(l, cb);
            self.nm(t).left = NIL;
            t
        } else {
            self.stats.overlaps += 1;
            let who = self.n(t).who;
            cb(who, zs, ze);
            let (l, r) = (self.n(t).left, self.n(t).right);
            self.report_and_free_all(l, cb);
            self.dealloc(t);
            self.remove_overlap_right(r, x_end, cb)
        }
    }

    /// INSERTWRITEINTERVAL (paper Figure 2).
    fn iw(&mut self, t: u32, x: Interval<A>, cb: &mut impl FnMut(A, u64, u64)) -> u32 {
        if t == NIL {
            let p = self.next_prio();
            return self.alloc(x, p);
        }
        self.stats.visited += 1;
        let (ys, ye) = (self.n(t).start, self.n(t).end);
        if x.end <= ys {
            // Case A: no overlap, x entirely to the left.
            let nl = self.iw(self.n(t).left, x, cb);
            self.nm(t).left = nl;
            return self.fix_left(t);
        }
        if x.start >= ye {
            // Case A: no overlap, x entirely to the right.
            let nr = self.iw(self.n(t).right, x, cb);
            self.nm(t).right = nr;
            return self.fix_right(t);
        }
        // Overlap: report the conflicting region with the old accessor.
        self.stats.overlaps += 1;
        let y_who = self.n(t).who;
        cb(y_who, x.start.max(ys), x.end.min(ye));
        if x.start <= ys && ye <= x.end {
            // Case D: x fully covers y. Replace y's payload in place (keeping
            // its priority) and flush remaining overlaps out of both subtrees.
            {
                let node = self.nm(t);
                node.start = x.start;
                node.end = x.end;
                node.who = x.who;
            }
            let nl = self.remove_overlap_left(self.n(t).left, x.start, cb);
            self.nm(t).left = nl;
            let nr = self.remove_overlap_right(self.n(t).right, x.end, cb);
            self.nm(t).right = nr;
            t
        } else if ys <= x.start && x.end <= ye {
            // Case C: y fully covers x (strictly on at least one side).
            // Keep the middle (= x) here; the side remnants of y are
            // re-inserted from this subtree's root, where they cannot overlap
            // anything (each is a classic single-node treap insert).
            {
                let node = self.nm(t);
                node.start = x.start;
                node.end = x.end;
                node.who = x.who;
            }
            let mut t = t;
            if ys < x.start {
                let p = self.next_prio();
                t = self.insert_disjoint(t, Interval::new(ys, x.start, y_who), p);
            }
            if x.end < ye {
                let p = self.next_prio();
                t = self.insert_disjoint(t, Interval::new(x.end, ye, y_who), p);
            }
            t
        } else if x.start > ys {
            // Case B: partial overlap, x to the right: trim y and recurse.
            self.nm(t).end = x.start;
            let nr = self.iw(self.n(t).right, x, cb);
            self.nm(t).right = nr;
            self.fix_right(t)
        } else {
            // Case B mirrored: partial overlap, x to the left.
            self.nm(t).start = x.end;
            let nl = self.iw(self.n(t).left, x, cb);
            self.nm(t).left = nl;
            self.fix_left(t)
        }
    }

    /// INSERTREADINTERVAL (paper §4.2, Figure 4). `keep_new(old)` is true
    /// when the new reader is left of the stored reader `old`.
    fn ir(&mut self, t: u32, x: Interval<A>, keep_new: &mut impl FnMut(A) -> bool) -> u32 {
        if t == NIL {
            let p = self.next_prio();
            return self.alloc(x, p);
        }
        self.stats.visited += 1;
        let (ys, ye) = (self.n(t).start, self.n(t).end);
        if x.end <= ys {
            let nl = self.ir(self.n(t).left, x, keep_new);
            self.nm(t).left = nl;
            return self.fix_left(t);
        }
        if x.start >= ye {
            let nr = self.ir(self.n(t).right, x, keep_new);
            self.nm(t).right = nr;
            return self.fix_right(t);
        }
        self.stats.overlaps += 1;
        let y_who = self.n(t).who;
        if x.start <= ys && ye <= x.end {
            // Case D: x fully covers y. The middle piece keeps y's bounds and
            // gets whichever accessor is leftmost; the flanks of x are
            // re-inserted from this subtree's root (they may split further —
            // Lemma 4.1's amortization covers this).
            if keep_new(y_who) {
                self.nm(t).who = x.who;
            }
            let mut t = t;
            if x.start < ys {
                t = self.ir(t, Interval::new(x.start, ys, x.who), keep_new);
            }
            if ye < x.end {
                t = self.ir(t, Interval::new(ye, x.end, x.who), keep_new);
            }
            t
        } else if ys <= x.start && x.end <= ye {
            // Case C: y fully covers x.
            if keep_new(y_who) {
                // Split y: keep x here, re-insert y's remnants from this
                // subtree's root.
                {
                    let node = self.nm(t);
                    node.start = x.start;
                    node.end = x.end;
                    node.who = x.who;
                }
                let mut t = t;
                if ys < x.start {
                    let p = self.next_prio();
                    t = self.insert_disjoint(t, Interval::new(ys, x.start, y_who), p);
                }
                if x.end < ye {
                    let p = self.next_prio();
                    t = self.insert_disjoint(t, Interval::new(x.end, ye, y_who), p);
                }
                t
            } else {
                // Old reader stays leftmost everywhere; x contributes nothing.
                t
            }
        } else if x.start > ys {
            // Partial overlap, x to the right (x.end > ye).
            if keep_new(y_who) {
                self.nm(t).end = x.start;
                let nr = self.ir(self.n(t).right, x, keep_new);
                self.nm(t).right = nr;
            } else {
                let trimmed = Interval::new(ye, x.end, x.who);
                let nr = self.ir(self.n(t).right, trimmed, keep_new);
                self.nm(t).right = nr;
            }
            self.fix_right(t)
        } else {
            // Partial overlap, x to the left (x.start < ys, x.end < ye).
            if keep_new(y_who) {
                self.nm(t).start = x.end;
                let nl = self.ir(self.n(t).left, x, keep_new);
                self.nm(t).left = nl;
            } else {
                let trimmed = Interval::new(x.start, ys, x.who);
                let nl = self.ir(self.n(t).left, trimmed, keep_new);
                self.nm(t).left = nl;
            }
            self.fix_left(t)
        }
    }

    /// Read-only overlap walk (paper §4.3).
    fn qo(&mut self, t: u32, lo: u64, hi: u64, f: &mut impl FnMut(A, u64, u64)) {
        if t == NIL {
            return;
        }
        self.stats.visited += 1;
        let (ys, ye, who) = {
            let n = self.n(t);
            (n.start, n.end, n.who)
        };
        if hi <= ys {
            self.qo(self.n(t).left, lo, hi, f);
        } else if lo >= ye {
            self.qo(self.n(t).right, lo, hi, f);
        } else {
            self.stats.overlaps += 1;
            f(who, lo.max(ys), hi.min(ye));
            if lo < ys {
                self.qo(self.n(t).left, lo, hi, f);
            }
            if hi > ye {
                self.qo(self.n(t).right, lo, hi, f);
            }
        }
    }

    fn collect(&self, t: u32, out: &mut Vec<Interval<A>>) {
        if t == NIL {
            return;
        }
        self.collect(self.n(t).left, out);
        let n = self.n(t);
        out.push(Interval {
            start: n.start,
            end: n.end,
            who: n.who,
        });
        self.collect(self.n(t).right, out);
    }

    /// Check the BST, heap and non-overlap invariants (tests only — O(n)).
    pub fn check_invariants(&self) {
        fn walk<A: Copy>(
            tr: &Treap<A>,
            t: u32,
            min_prio: Option<u64>,
            prev_end: &mut u64,
            count: &mut usize,
        ) {
            if t == NIL {
                return;
            }
            *count += 1;
            let n = tr.n(t);
            assert!(n.start < n.end, "empty interval stored");
            if let Some(p) = min_prio {
                assert!(n.prio <= p, "heap order violated");
            }
            walk(tr, n.left, Some(n.prio), prev_end, count);
            assert!(
                n.start >= *prev_end,
                "intervals overlap or are out of order: start {} < prev end {}",
                n.start,
                *prev_end
            );
            *prev_end = n.end;
            walk(tr, n.right, Some(n.prio), prev_end, count);
        }
        let mut prev_end = 0u64;
        let mut count = 0usize;
        walk(self, self.root, None, &mut prev_end, &mut count);
        assert_eq!(count, self.len, "len out of sync with tree");
        // Lemma 4.1: at most 2m+1 intervals after m inserts.
        assert!(
            self.len as u64 <= 2 * self.inserts + 1,
            "Lemma 4.1 bound violated: {} intervals after {} inserts",
            self.len,
            self.inserts
        );
    }

    /// Record that `[start, end)` was inserted, growing the conservative
    /// cover (see the `lo_bound`/`hi_bound` fields).
    #[inline]
    fn note_extent(&mut self, start: u64, end: u64) {
        self.lo_bound = self.lo_bound.min(start);
        self.hi_bound = self.hi_bound.max(end);
    }

    /// `[lo, hi)` cannot overlap any stored interval: one key compare
    /// against the conservative cover instead of a root-to-leaf walk.
    #[inline]
    fn misses_cover(&self, lo: u64, hi: u64) -> bool {
        self.root == NIL || hi <= self.lo_bound || lo >= self.hi_bound
    }

    /// `runs` is sorted, pairwise disjoint, and non-empty per run — the
    /// shape a coalescing shadow's extract produces.
    fn runs_are_sorted_disjoint(runs: &[(u64, u64)]) -> bool {
        runs.iter().all(|&(lo, hi)| lo < hi) && runs.windows(2).all(|w| w[0].1 <= w[1].0)
    }

    /// Build a valid treap from sorted disjoint runs in O(n) via the
    /// rightmost-spine Cartesian construction: each new node (random
    /// priority) displaces the spine suffix it outranks as its left child.
    fn build_sorted(&mut self, who: A, runs: &[(u64, u64)]) -> u32 {
        let mut spine: Vec<u32> = Vec::new();
        for &(lo, hi) in runs {
            let p = self.next_prio();
            let t = self.alloc(Interval::new(lo, hi, who), p);
            self.stats.visited += 1;
            let mut displaced = NIL;
            while let Some(&top) = spine.last() {
                if self.n(top).prio < p {
                    displaced = top;
                    spine.pop();
                } else {
                    break;
                }
            }
            self.nm(t).left = displaced;
            if let Some(&top) = spine.last() {
                self.nm(top).right = t;
            }
            spine.push(t);
        }
        spine.first().copied().unwrap_or(NIL)
    }

    /// Join two treaps where every key in `a` precedes every key in `b`
    /// (standard treap join along the touching spines).
    fn join(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        self.stats.visited += 1;
        if self.n(a).prio >= self.n(b).prio {
            let r = self.join(self.n(a).right, b);
            self.nm(a).right = r;
            a
        } else {
            let l = self.join(a, self.n(b).left);
            self.nm(b).left = l;
            b
        }
    }

    /// Height of the tree (tests/benches; O(n)).
    pub fn height(&self) -> usize {
        fn h<A>(nodes: &[Node<A>], t: u32) -> usize {
            if t == NIL {
                0
            } else {
                1 + h(nodes, nodes[t as usize].left).max(h(nodes, nodes[t as usize].right))
            }
        }
        h(&self.nodes, self.root)
    }
}

impl<A> Drop for Treap<A> {
    fn drop(&mut self) {
        // Return the arena's footprint to the gauges (no-op while disabled).
        OBS_NODES.reconcile(&mut self.owned_nodes, 0);
        OBS_BYTES.reconcile(&mut self.owned_bytes, 0);
    }
}

impl<A: Copy> IntervalStore<A> for Treap<A> {
    fn insert_write(&mut self, x: Interval<A>, mut conflict: impl FnMut(A, u64, u64)) {
        debug_assert!(x.start < x.end);
        self.stats.ops += 1;
        self.inserts += 1;
        let visited_before = self.stats.visited;
        if self.misses_cover(x.start, x.end) {
            // Key-compare early-out: nothing stored can overlap `x`, so the
            // overlap case analysis is skipped and `x` goes in as a plain
            // disjoint insert (identical resulting tree: same BST position,
            // same priority draw, no conflicts to report).
            let p = self.next_prio();
            self.root = self.insert_disjoint(self.root, x, p);
        } else {
            self.root = self.iw(self.root, x, &mut conflict);
        }
        self.note_extent(x.start, x.end);
        if stint_obs::is_enabled() {
            OBS_INSERTS.incr();
            OBS_OP_VISITED.observe(self.stats.visited - visited_before);
        }
    }

    fn insert_read(&mut self, x: Interval<A>, mut is_new_left_of: impl FnMut(A) -> bool) {
        debug_assert!(x.start < x.end);
        self.stats.ops += 1;
        self.inserts += 1;
        let visited_before = self.stats.visited;
        if self.misses_cover(x.start, x.end) {
            let p = self.next_prio();
            self.root = self.insert_disjoint(self.root, x, p);
        } else {
            self.root = self.ir(self.root, x, &mut is_new_left_of);
        }
        self.note_extent(x.start, x.end);
        if stint_obs::is_enabled() {
            OBS_INSERTS.incr();
            OBS_OP_VISITED.observe(self.stats.visited - visited_before);
        }
    }

    fn query_overlaps(&mut self, lo: u64, hi: u64, mut f: impl FnMut(A, u64, u64)) {
        self.stats.ops += 1;
        if self.misses_cover(lo, hi) {
            // Query miss early-out: zero nodes visited.
            if stint_obs::is_enabled() {
                OBS_QUERIES.incr();
                OBS_OP_VISITED.observe(0);
            }
            return;
        }
        let visited_before = self.stats.visited;
        self.qo(self.root, lo, hi, &mut f);
        if stint_obs::is_enabled() {
            OBS_QUERIES.incr();
            OBS_OP_VISITED.observe(self.stats.visited - visited_before);
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn to_vec(&self) -> Vec<Interval<A>> {
        let mut v = Vec::with_capacity(self.len);
        self.collect(self.root, &mut v);
        v
    }

    fn insert_writes_for(
        &mut self,
        who: A,
        runs: &[(u64, u64)],
        mut conflict: impl FnMut(A, u64, u64),
    ) {
        if let Some(&(first_lo, _)) = runs.first() {
            let last_hi = runs[runs.len() - 1].1;
            // Bulk fast path: the whole batch lies beyond (or before) the
            // conservative cover, so no overlap with stored intervals — or
            // between runs — is possible. Build a treap from the sorted
            // batch in O(n) and join it onto the tree in O(lg n), instead
            // of n root-to-leaf insertions.
            let append = self.root == NIL || first_lo >= self.hi_bound;
            let prepend = !append && last_hi <= self.lo_bound;
            if (append || prepend) && Self::runs_are_sorted_disjoint(runs) {
                let n = runs.len() as u64;
                self.stats.ops += n;
                self.inserts += n;
                let visited_before = self.stats.visited;
                let built = self.build_sorted(who, runs);
                let root = self.root;
                self.root = if append {
                    self.join(root, built)
                } else {
                    self.join(built, root)
                };
                self.note_extent(first_lo, last_hi);
                if stint_obs::is_enabled() {
                    OBS_INSERTS.add(n);
                    OBS_OP_VISITED.observe(self.stats.visited - visited_before);
                }
                return;
            }
        }
        for &(lo, hi) in runs {
            self.insert_write(Interval::new(lo, hi, who), &mut conflict);
        }
    }

    fn insert_reads_for(
        &mut self,
        who: A,
        runs: &[(u64, u64)],
        mut is_new_left_of: impl FnMut(A) -> bool,
    ) {
        if let Some(&(first_lo, _)) = runs.first() {
            let last_hi = runs[runs.len() - 1].1;
            let append = self.root == NIL || first_lo >= self.hi_bound;
            let prepend = !append && last_hi <= self.lo_bound;
            if (append || prepend) && Self::runs_are_sorted_disjoint(runs) {
                let n = runs.len() as u64;
                self.stats.ops += n;
                self.inserts += n;
                let visited_before = self.stats.visited;
                let built = self.build_sorted(who, runs);
                let root = self.root;
                self.root = if append {
                    self.join(root, built)
                } else {
                    self.join(built, root)
                };
                self.note_extent(first_lo, last_hi);
                if stint_obs::is_enabled() {
                    OBS_INSERTS.add(n);
                    OBS_OP_VISITED.observe(self.stats.visited - visited_before);
                }
                return;
            }
        }
        for &(lo, hi) in runs {
            self.insert_read(Interval::new(lo, hi, who), &mut is_new_left_of);
        }
    }

    fn stats(&self) -> OpStats {
        // Stats are collected once per tree at the end of a run — the one
        // point where the O(n) exact height is affordable.
        if stint_obs::is_enabled() && self.len > 0 {
            OBS_DEPTH.observe(self.height() as u64);
        }
        let mut s = self.stats;
        s.inserts = self.inserts;
        s.len_hw = self.len_hw as u64;
        s.bytes = self.heap_bytes();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64, who: u32) -> Interval<u32> {
        Interval::new(s, e, who)
    }

    fn contents(t: &Treap<u32>) -> Vec<(u64, u64, u32)> {
        t.to_vec().iter().map(|i| (i.start, i.end, i.who)).collect()
    }

    #[test]
    fn degenerate_priorities_keep_results_correct() {
        // Under the `treap-degenerate` fault the tree is list-shaped but must
        // return exactly the results of a healthy treap.
        let ops: Vec<(u64, u64, u32)> = (0..200)
            .map(|i| {
                let s = (i * 37) % 500;
                (s, s + 1 + (i * 13) % 40, i as u32)
            })
            .collect();
        let run = |t: &mut Treap<u32>| {
            let mut hits = Vec::new();
            for &(s, e, w) in &ops {
                t.insert_write(iv(s, e, w), |who, lo, hi| hits.push((who, lo, hi)));
            }
            t.check_invariants();
            // Conflict callback *order* follows tree shape; the detector
            // consumes conflicts as a set, so compare shape-independently.
            hits.sort_unstable();
            (contents(t), hits)
        };
        let healthy = run(&mut Treap::new());
        let degenerate = {
            let _plan = stint_faults::ScopedPlan::install(stint_faults::FaultPlan {
                treap_degenerate: true,
                ..Default::default()
            });
            let mut t = Treap::new();
            assert!(t.degenerate, "plan must be sampled at construction");
            drop(_plan); // sampling already happened; results must not change
            run(&mut t)
        };
        assert_eq!(healthy, degenerate);
    }

    #[test]
    fn write_disjoint_inserts() {
        let mut t = Treap::new();
        for (s, e, w) in [(10, 20, 1), (0, 5, 2), (30, 40, 3), (25, 28, 4)] {
            t.insert_write(iv(s, e, w), |_, _, _| panic!("no overlap expected"));
            t.check_invariants();
        }
        assert_eq!(
            contents(&t),
            vec![(0, 5, 2), (10, 20, 1), (25, 28, 4), (30, 40, 3)]
        );
    }

    #[test]
    fn write_case_b_right_trims_old() {
        let mut t = Treap::new();
        t.insert_write(iv(0, 10, 1), |_, _, _| {});
        let mut hits = Vec::new();
        t.insert_write(iv(5, 15, 2), |w, lo, hi| hits.push((w, lo, hi)));
        assert_eq!(hits, vec![(1, 5, 10)]);
        assert_eq!(contents(&t), vec![(0, 5, 1), (5, 15, 2)]);
        t.check_invariants();
    }

    #[test]
    fn write_case_b_left_trims_old() {
        let mut t = Treap::new();
        t.insert_write(iv(10, 20, 1), |_, _, _| {});
        let mut hits = Vec::new();
        t.insert_write(iv(5, 15, 2), |w, lo, hi| hits.push((w, lo, hi)));
        assert_eq!(hits, vec![(1, 10, 15)]);
        assert_eq!(contents(&t), vec![(5, 15, 2), (15, 20, 1)]);
        t.check_invariants();
    }

    #[test]
    fn write_case_c_splits_old_into_three() {
        let mut t = Treap::new();
        t.insert_write(iv(0, 30, 1), |_, _, _| {});
        let mut hits = Vec::new();
        t.insert_write(iv(10, 20, 2), |w, lo, hi| hits.push((w, lo, hi)));
        assert_eq!(hits, vec![(1, 10, 20)]);
        assert_eq!(contents(&t), vec![(0, 10, 1), (10, 20, 2), (20, 30, 1)]);
        t.check_invariants();
    }

    #[test]
    fn write_case_c_exact_prefix_and_suffix() {
        let mut t = Treap::new();
        t.insert_write(iv(0, 30, 1), |_, _, _| {});
        t.insert_write(iv(0, 10, 2), |_, _, _| {}); // prefix: only right remnant
        t.check_invariants();
        assert_eq!(contents(&t), vec![(0, 10, 2), (10, 30, 1)]);
        t.insert_write(iv(20, 30, 3), |_, _, _| {}); // suffix of the remnant
        t.check_invariants();
        assert_eq!(contents(&t), vec![(0, 10, 2), (10, 20, 1), (20, 30, 3)]);
    }

    #[test]
    fn write_case_d_replaces_and_sweeps_subtrees() {
        let mut t = Treap::new();
        for (s, e, w) in [(0, 2, 1), (4, 6, 2), (8, 10, 3), (12, 14, 4), (16, 18, 5)] {
            t.insert_write(iv(s, e, w), |_, _, _| {});
        }
        let mut hits = Vec::new();
        t.insert_write(iv(3, 15, 9), |w, lo, hi| hits.push((w, lo, hi)));
        hits.sort_unstable();
        assert_eq!(hits, vec![(2, 4, 6), (3, 8, 10), (4, 12, 14)]);
        assert_eq!(contents(&t), vec![(0, 2, 1), (3, 15, 9), (16, 18, 5)]);
        t.check_invariants();
    }

    #[test]
    fn write_case_d_with_partial_edges() {
        let mut t = Treap::new();
        for (s, e, w) in [(0, 5, 1), (6, 8, 2), (9, 12, 3)] {
            t.insert_write(iv(s, e, w), |_, _, _| {});
        }
        // Covers (6,8) fully, clips (0,5) and (9,12) partially.
        let mut hits = Vec::new();
        t.insert_write(iv(3, 10, 7), |w, lo, hi| hits.push((w, lo, hi)));
        hits.sort_unstable();
        assert_eq!(hits, vec![(1, 3, 5), (2, 6, 8), (3, 9, 10)]);
        assert_eq!(contents(&t), vec![(0, 3, 1), (3, 10, 7), (10, 12, 3)]);
        t.check_invariants();
    }

    #[test]
    fn write_exact_match_replaces() {
        let mut t = Treap::new();
        t.insert_write(iv(5, 10, 1), |_, _, _| {});
        let mut hits = Vec::new();
        t.insert_write(iv(5, 10, 2), |w, lo, hi| hits.push((w, lo, hi)));
        assert_eq!(hits, vec![(1, 5, 10)]);
        assert_eq!(contents(&t), vec![(5, 10, 2)]);
        t.check_invariants();
    }

    #[test]
    fn paper_read_example() {
        // From Section 4: reads [8,16,a],[24,32,b],[40,52,c],[52,60,d];
        // new read [12,56,e] with e left of a and c, but not of b and d.
        let (a, b, c, d, e) = (1u32, 2, 3, 4, 5);
        let mut t = Treap::new();
        for (s, en, w) in [(8, 16, a), (24, 32, b), (40, 52, c), (52, 60, d)] {
            t.insert_read(iv(s, en, w), |_| true);
        }
        t.insert_read(iv(12, 56, e), |old| old == a || old == c);
        t.check_invariants();
        let got = crate::normalize(t.to_vec());
        let want = vec![
            iv(8, 12, a),
            iv(12, 24, e),
            iv(24, 32, b),
            iv(32, 52, e),
            iv(52, 60, d),
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn read_case_c_old_wins_absorbs_new() {
        let mut t = Treap::new();
        t.insert_read(iv(0, 100, 1), |_| true);
        t.insert_read(iv(20, 30, 2), |_| false); // old stays leftmost
        assert_eq!(contents(&t), vec![(0, 100, 1)]);
        t.check_invariants();
    }

    #[test]
    fn read_case_c_new_wins_splits_old() {
        let mut t = Treap::new();
        t.insert_read(iv(0, 100, 1), |_| true);
        t.insert_read(iv(20, 30, 2), |_| true);
        assert_eq!(contents(&t), vec![(0, 20, 1), (20, 30, 2), (30, 100, 1)]);
        t.check_invariants();
    }

    #[test]
    fn read_case_d_gap_filling_lemma41_example() {
        // Lemma 4.1's example: [1,2,a],[3,4,b],[5,6,c]; insert [0,7,d] where
        // a,b,c are all left of d — d only fills the gaps.
        let mut t = Treap::new();
        for (s, e, w) in [(1, 2, 1), (3, 4, 2), (5, 6, 3)] {
            t.insert_read(iv(s, e, w), |_| true);
        }
        t.insert_read(iv(0, 7, 4), |_| false);
        t.check_invariants();
        assert_eq!(
            contents(&t),
            vec![
                (0, 1, 4),
                (1, 2, 1),
                (2, 3, 4),
                (3, 4, 2),
                (4, 5, 4),
                (5, 6, 3),
                (6, 7, 4)
            ]
        );
    }

    #[test]
    fn read_case_d_new_wins_everywhere() {
        let mut t = Treap::new();
        for (s, e, w) in [(1, 2, 1), (3, 4, 2), (5, 6, 3)] {
            t.insert_read(iv(s, e, w), |_| true);
        }
        t.insert_read(iv(0, 7, 4), |_| true);
        t.check_invariants();
        assert_eq!(crate::normalize(t.to_vec()), vec![iv(0, 7, 4)]);
    }

    #[test]
    fn read_partial_old_wins_trims_new() {
        let mut t = Treap::new();
        t.insert_read(iv(0, 10, 1), |_| true);
        t.insert_read(iv(5, 20, 2), |_| false);
        t.check_invariants();
        assert_eq!(contents(&t), vec![(0, 10, 1), (10, 20, 2)]);
    }

    #[test]
    fn read_partial_left_old_wins_trims_new() {
        let mut t = Treap::new();
        t.insert_read(iv(10, 20, 1), |_| true);
        t.insert_read(iv(0, 15, 2), |_| false);
        t.check_invariants();
        assert_eq!(contents(&t), vec![(0, 10, 2), (10, 20, 1)]);
    }

    #[test]
    fn query_reports_all_overlaps_without_modifying() {
        let mut t = Treap::new();
        for (s, e, w) in [(0, 5, 1), (10, 15, 2), (20, 25, 3), (30, 35, 4)] {
            t.insert_write(iv(s, e, w), |_, _, _| {});
        }
        let before = contents(&t);
        let mut hits = Vec::new();
        t.query_overlaps(3, 22, |w, lo, hi| hits.push((w, lo, hi)));
        hits.sort_unstable();
        assert_eq!(hits, vec![(1, 3, 5), (2, 10, 15), (3, 20, 22)]);
        assert_eq!(contents(&t), before);
        t.check_invariants();
    }

    #[test]
    fn query_on_empty_and_miss() {
        let mut t: Treap<u32> = Treap::new();
        t.query_overlaps(0, 100, |_, _, _| panic!("empty tree has no overlaps"));
        t.insert_write(iv(10, 20, 1), |_, _, _| {});
        t.query_overlaps(0, 10, |_, _, _| panic!("touching is not overlapping"));
        t.query_overlaps(20, 30, |_, _, _| panic!("touching is not overlapping"));
    }

    #[test]
    fn heights_stay_logarithmic() {
        let mut t = Treap::new();
        // Sorted insertion order — worst case for an unbalanced BST.
        for i in 0..10_000u64 {
            t.insert_write(iv(i * 10, i * 10 + 5, (i % 7) as u32), |_, _, _| {});
        }
        let h = t.height();
        assert!(h < 64, "height {h} too large for 10k nodes — not balanced");
        t.check_invariants();
    }

    #[test]
    fn bulk_append_matches_loop_inserts() {
        // Strand-end flush pattern: each batch of sorted disjoint runs lands
        // entirely beyond everything stored (fresh address block per batch).
        let batches: Vec<Vec<(u64, u64)>> = (0..20u64)
            .map(|b| {
                (0..5)
                    .map(|i| (b * 100 + i * 10, b * 100 + i * 10 + 4))
                    .collect()
            })
            .collect();
        let mut bulk = Treap::new();
        let mut looped = Treap::new();
        for (w, batch) in batches.iter().enumerate() {
            bulk.insert_writes_for(w as u32, batch, |_, _, _| panic!("no overlap expected"));
            for &(lo, hi) in batch {
                looped.insert_write(iv(lo, hi, w as u32), |_, _, _| panic!("no overlap"));
            }
            bulk.check_invariants();
        }
        assert_eq!(contents(&bulk), contents(&looped));
        assert_eq!(bulk.insert_ops(), looped.insert_ops());
        assert_eq!(bulk.len_high_water(), looped.len_high_water());
    }

    #[test]
    fn bulk_prepend_and_overlapping_fall_through() {
        let mut t = Treap::new();
        t.insert_writes_for(1, &[(100, 110), (120, 130)], |_, _, _| {});
        // Entirely below the cover: prepend fast path.
        t.insert_writes_for(2, &[(0, 10), (20, 30)], |_, _, _| {});
        t.check_invariants();
        assert_eq!(
            contents(&t),
            vec![(0, 10, 2), (20, 30, 2), (100, 110, 1), (120, 130, 1)]
        );
        // Overlapping batch must fall back to the per-run case analysis and
        // report conflicts exactly as single inserts would.
        let mut hits = Vec::new();
        t.insert_writes_for(3, &[(25, 105)], |w, lo, hi| hits.push((w, lo, hi)));
        hits.sort_unstable();
        assert_eq!(hits, vec![(1, 100, 105), (2, 25, 30)]);
        t.check_invariants();
    }

    #[test]
    fn bulk_read_append_then_overlap_resolves_leftmost() {
        let mut t = Treap::new();
        t.insert_reads_for(1, &[(0, 10), (20, 30)], |_| panic!("no overlap expected"));
        t.check_invariants();
        // Overlapping read batch falls back and resolves left-of per region.
        t.insert_reads_for(2, &[(5, 25)], |_| false);
        t.check_invariants();
        assert_eq!(contents(&t), vec![(0, 10, 1), (10, 20, 2), (20, 30, 1)]);
    }

    #[test]
    fn unsorted_bulk_batch_falls_back_correctly() {
        let mut t = Treap::new();
        // Not sorted: fast path must reject it and loop.
        t.insert_writes_for(1, &[(50, 60), (0, 10)], |_, _, _| {});
        t.check_invariants();
        assert_eq!(contents(&t), vec![(0, 10, 1), (50, 60, 1)]);
    }

    #[test]
    fn cover_early_out_skips_walks_but_stays_exact() {
        let mut t = Treap::new();
        t.insert_write(iv(100, 200, 1), |_, _, _| {});
        let s0 = t.stats();
        // Disjoint query left and right of the cover: zero nodes visited.
        t.query_overlaps(0, 100, |_, _, _| panic!("touching is not overlapping"));
        t.query_overlaps(200, 300, |_, _, _| panic!("touching is not overlapping"));
        let s1 = t.stats();
        assert_eq!(s1.ops, s0.ops + 2);
        assert_eq!(s1.visited, s0.visited, "cover miss must not walk the tree");
        // Overlapping query still reports exactly.
        let mut hits = Vec::new();
        t.query_overlaps(150, 250, |w, lo, hi| hits.push((w, lo, hi)));
        assert_eq!(hits, vec![(1, 150, 200)]);
    }

    #[test]
    fn stats_count_ops_and_overlaps() {
        let mut t = Treap::new();
        t.insert_write(iv(0, 10, 1), |_, _, _| {});
        t.insert_write(iv(5, 15, 2), |_, _, _| {});
        t.query_overlaps(0, 20, |_, _, _| {});
        let s = t.stats();
        assert_eq!(s.ops, 3);
        assert!(s.overlaps >= 3); // 1 on second insert, 2 on query
        assert!(s.visited >= 3);
    }
}
