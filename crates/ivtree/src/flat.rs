//! `BTreeMap`-based reference implementation of the interval access history.
//!
//! Keeps the disjoint intervals in a `BTreeMap` keyed by interval start.
//! Because stored intervals are pairwise disjoint, they are simultaneously
//! sorted by start and by end, so the overlaps of `[lo, hi)` are found by
//! walking backwards from the last interval starting before `hi` until the
//! first one ending at or before `lo` — O(log n + k) like the treap, with the
//! B-tree's better constants on lookup but worse constants on the
//! remove/re-insert churn of interval splitting.
//!
//! The paper notes "any balanced binary search tree would work"; this store
//! is both the differential-testing oracle for [`crate::Treap`] and the
//! ablation baseline in the `ivtree` bench.

use crate::{Interval, IntervalStore, OpStats};
use std::collections::BTreeMap;

/// Reference interval store. See the crate docs for the shared semantics.
pub struct FlatStore<A> {
    map: BTreeMap<u64, (u64, A)>,
    stats: OpStats,
    inserts: u64,
    /// Most intervals ever stored at once (Lemma 4.1 watermark).
    len_hw: usize,
    /// Scratch buffer reused across operations.
    scratch: Vec<(u64, u64, A)>,
}

impl<A: Copy> Default for FlatStore<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Copy> FlatStore<A> {
    pub fn new() -> Self {
        FlatStore {
            map: BTreeMap::new(),
            stats: OpStats::default(),
            inserts: 0,
            len_hw: 0,
            scratch: Vec::new(),
        }
    }

    /// Total insert operations performed.
    pub fn insert_ops(&self) -> u64 {
        self.inserts
    }

    /// Most intervals ever stored at once (`<= 2*insert_ops() + 1`).
    pub fn len_high_water(&self) -> usize {
        self.len_hw
    }

    /// Estimated heap bytes. `BTreeMap` exposes no capacity, so this scales
    /// the entry payload by 3/2 — leaves hold up to 11 entries and average
    /// roughly two-thirds full — and adds the scratch buffer exactly.
    pub fn approx_bytes(&self) -> u64 {
        let per = std::mem::size_of::<u64>() + std::mem::size_of::<(u64, A)>();
        (self.map.len() * per * 3 / 2
            + self.scratch.capacity() * std::mem::size_of::<(u64, u64, A)>()) as u64
    }

    /// Collect `(start, end, who)` of stored intervals overlapping `[lo, hi)`
    /// in ascending order into the scratch buffer.
    fn collect_overlaps(&mut self, lo: u64, hi: u64) {
        self.scratch.clear();
        for (&s, &(e, who)) in self.map.range(..hi).rev() {
            if e <= lo {
                break; // disjoint ⇒ everything further left ends even earlier
            }
            self.scratch.push((s, e, who));
            self.stats.visited += 1;
        }
        self.scratch.reverse();
        self.stats.overlaps += self.scratch.len() as u64;
    }
}

impl<A: Copy> IntervalStore<A> for FlatStore<A> {
    fn insert_write(&mut self, x: Interval<A>, mut conflict: impl FnMut(A, u64, u64)) {
        debug_assert!(x.start < x.end);
        self.stats.ops += 1;
        self.inserts += 1;
        self.collect_overlaps(x.start, x.end);
        let ov = std::mem::take(&mut self.scratch);
        for &(s, e, who) in &ov {
            conflict(who, s.max(x.start), e.min(x.end));
            self.map.remove(&s);
            if s < x.start {
                self.map.insert(s, (x.start, who));
            }
            if e > x.end {
                self.map.insert(x.end, (e, who));
            }
        }
        self.map.insert(x.start, (x.end, x.who));
        self.scratch = ov;
        self.len_hw = self.len_hw.max(self.map.len());
    }

    fn insert_read(&mut self, x: Interval<A>, mut is_new_left_of: impl FnMut(A) -> bool) {
        debug_assert!(x.start < x.end);
        self.stats.ops += 1;
        self.inserts += 1;
        self.collect_overlaps(x.start, x.end);
        let ov = std::mem::take(&mut self.scratch);
        // Rebuild the affected region piece by piece.
        let mut cur = x.start;
        for &(s, e, who) in &ov {
            self.map.remove(&s);
            if s < x.start {
                // Prefix of the old interval outside x: old reader stays.
                self.map.insert(s, (x.start, who));
            }
            if cur < s {
                // Gap inside x before this overlap: new reader fills it.
                self.map.insert(cur, (s, x.who));
            }
            let olo = s.max(x.start);
            let ohi = e.min(x.end);
            let winner = if is_new_left_of(who) { x.who } else { who };
            self.map.insert(olo, (ohi, winner));
            if e > x.end {
                // Suffix of the old interval outside x: old reader stays.
                self.map.insert(x.end, (e, who));
            }
            cur = ohi;
        }
        if cur < x.end {
            self.map.insert(cur, (x.end, x.who));
        }
        self.scratch = ov;
        self.len_hw = self.len_hw.max(self.map.len());
    }

    fn query_overlaps(&mut self, lo: u64, hi: u64, mut f: impl FnMut(A, u64, u64)) {
        if lo >= hi {
            return;
        }
        self.stats.ops += 1;
        self.collect_overlaps(lo, hi);
        let ov = std::mem::take(&mut self.scratch);
        for &(s, e, who) in &ov {
            f(who, s.max(lo), e.min(hi));
        }
        self.scratch = ov;
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn to_vec(&self) -> Vec<Interval<A>> {
        self.map
            .iter()
            .map(|(&s, &(e, who))| Interval {
                start: s,
                end: e,
                who,
            })
            .collect()
    }

    fn stats(&self) -> OpStats {
        let mut s = self.stats;
        s.inserts = self.inserts;
        s.len_hw = self.len_hw as u64;
        s.bytes = self.approx_bytes();
        s
    }
}

impl<A: Copy> FlatStore<A> {
    /// Check disjointness and ordering (tests only).
    pub fn check_invariants(&self) {
        let mut prev_end = 0u64;
        for (&s, &(e, _)) in &self.map {
            assert!(s < e, "empty interval stored");
            assert!(s >= prev_end, "overlap in FlatStore");
            prev_end = e;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64, who: u32) -> Interval<u32> {
        Interval::new(s, e, who)
    }

    fn contents(t: &FlatStore<u32>) -> Vec<(u64, u64, u32)> {
        t.to_vec().iter().map(|i| (i.start, i.end, i.who)).collect()
    }

    #[test]
    fn write_semantics_match_treap_unit_cases() {
        let mut t = FlatStore::new();
        t.insert_write(iv(0, 30, 1), |_, _, _| {});
        let mut hits = Vec::new();
        t.insert_write(iv(10, 20, 2), |w, lo, hi| hits.push((w, lo, hi)));
        assert_eq!(hits, vec![(1, 10, 20)]);
        assert_eq!(contents(&t), vec![(0, 10, 1), (10, 20, 2), (20, 30, 1)]);
        t.check_invariants();
    }

    #[test]
    fn write_covering_many() {
        let mut t = FlatStore::new();
        for (s, e, w) in [(0, 2, 1), (4, 6, 2), (8, 10, 3)] {
            t.insert_write(iv(s, e, w), |_, _, _| {});
        }
        let mut hits = Vec::new();
        t.insert_write(iv(1, 9, 7), |w, lo, hi| hits.push((w, lo, hi)));
        assert_eq!(hits, vec![(1, 1, 2), (2, 4, 6), (3, 8, 9)]);
        assert_eq!(contents(&t), vec![(0, 1, 1), (1, 9, 7), (9, 10, 3)]);
        t.check_invariants();
    }

    #[test]
    fn paper_read_example() {
        let (a, b, c, d, e) = (1u32, 2, 3, 4, 5);
        let mut t = FlatStore::new();
        for (s, en, w) in [(8, 16, a), (24, 32, b), (40, 52, c), (52, 60, d)] {
            t.insert_read(iv(s, en, w), |_| true);
        }
        t.insert_read(iv(12, 56, e), |old| old == a || old == c);
        t.check_invariants();
        let got = crate::normalize(t.to_vec());
        let want = vec![
            iv(8, 12, a),
            iv(12, 24, e),
            iv(24, 32, b),
            iv(32, 52, e),
            iv(52, 60, d),
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn read_gap_filling() {
        let mut t = FlatStore::new();
        for (s, e, w) in [(1, 2, 1), (3, 4, 2), (5, 6, 3)] {
            t.insert_read(iv(s, e, w), |_| true);
        }
        t.insert_read(iv(0, 7, 4), |_| false);
        t.check_invariants();
        assert_eq!(
            contents(&t),
            vec![
                (0, 1, 4),
                (1, 2, 1),
                (2, 3, 4),
                (3, 4, 2),
                (4, 5, 4),
                (5, 6, 3),
                (6, 7, 4)
            ]
        );
    }

    #[test]
    fn query_clips_to_range() {
        let mut t = FlatStore::new();
        t.insert_write(iv(0, 100, 1), |_, _, _| {});
        let mut hits = Vec::new();
        t.query_overlaps(40, 60, |w, lo, hi| hits.push((w, lo, hi)));
        assert_eq!(hits, vec![(1, 40, 60)]);
    }
}
