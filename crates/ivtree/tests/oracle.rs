//! Differential property tests: the treap must agree with the flat store on
//! random operation sequences — same final contents (normalized), same
//! conflict callbacks (as multisets), same left-of resolutions, and the treap
//! must keep all its structural invariants plus the Lemma 4.1 size bound.

use proptest::prelude::*;
use stint_ivtree::{normalize, FlatStore, Interval, IntervalStore, Treap};

#[derive(Clone, Debug)]
enum Op {
    Write { start: u64, len: u64, who: u32 },
    Read { start: u64, len: u64, who: u32 },
    Query { start: u64, len: u64 },
}

fn op_strategy(space: u64, max_len: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..space, 1..=max_len, 0..50u32).prop_map(|(start, len, who)| Op::Write {
            start,
            len,
            who
        }),
        (0..space, 1..=max_len, 0..50u32).prop_map(|(start, len, who)| Op::Read {
            start,
            len,
            who
        }),
        (0..space, 1..=max_len).prop_map(|(start, len)| Op::Query { start, len }),
    ]
}

/// A deterministic, arbitrary (but fixed per test case) "left-of" relation:
/// strand `a` is left of strand `b` iff h(a) < h(b) for a keyed hash. Any
/// predicate works for store equivalence as long as both stores see the same
/// one.
fn left_of(key: u64, a: u32, b: u32) -> bool {
    let h = |x: u32| (x as u64 ^ key).wrapping_mul(0x9E3779B97F4A7C15);
    h(a) < h(b)
}

/// Merge adjacent same-accessor regions: the stores may legally fragment a
/// logically contiguous conflict into touching pieces.
fn normalize_hits(mut v: Vec<(u32, u64, u64)>) -> Vec<(u32, u64, u64)> {
    v.sort_unstable_by_key(|&(_, lo, _)| lo);
    let mut out: Vec<(u32, u64, u64)> = Vec::with_capacity(v.len());
    for (w, lo, hi) in v {
        match out.last_mut() {
            Some((pw, _, phi)) if *pw == w && *phi == lo => *phi = hi,
            _ => out.push((w, lo, hi)),
        }
    }
    out.sort_unstable();
    out
}

fn run_case(ops: &[Op], key: u64) {
    let mut treap: Treap<u32> = Treap::with_seed(key);
    let mut flat: FlatStore<u32> = FlatStore::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Write { start, len, who } => {
                let iv = Interval::new(start, start + len, who);
                let mut ct: Vec<(u32, u64, u64)> = Vec::new();
                let mut cf: Vec<(u32, u64, u64)> = Vec::new();
                treap.insert_write(iv, |w, lo, hi| ct.push((w, lo, hi)));
                flat.insert_write(iv, |w, lo, hi| cf.push((w, lo, hi)));
                assert_eq!(
                    normalize_hits(ct),
                    normalize_hits(cf),
                    "write conflicts diverged at op {i}"
                );
            }
            Op::Read { start, len, who } => {
                let iv = Interval::new(start, start + len, who);
                treap.insert_read(iv, |old| left_of(key, who, old));
                flat.insert_read(iv, |old| left_of(key, who, old));
            }
            Op::Query { start, len } => {
                let mut ct: Vec<(u32, u64, u64)> = Vec::new();
                let mut cf: Vec<(u32, u64, u64)> = Vec::new();
                treap.query_overlaps(start, start + len, |w, lo, hi| ct.push((w, lo, hi)));
                flat.query_overlaps(start, start + len, |w, lo, hi| cf.push((w, lo, hi)));
                assert_eq!(
                    normalize_hits(ct),
                    normalize_hits(cf),
                    "query results diverged at op {i}"
                );
            }
        }
        treap.check_invariants();
        flat.check_invariants();
        assert_eq!(
            normalize(treap.to_vec()),
            normalize(flat.to_vec()),
            "contents diverged at op {i} ({op:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Dense address space: heavy overlapping, all split cases exercised.
    #[test]
    fn treap_matches_flat_dense(
        ops in proptest::collection::vec(op_strategy(64, 24), 1..120),
        key in any::<u64>(),
    ) {
        run_case(&ops, key);
    }

    /// Sparse address space: mostly disjoint inserts, deep trees.
    #[test]
    fn treap_matches_flat_sparse(
        ops in proptest::collection::vec(op_strategy(100_000, 64), 1..200),
        key in any::<u64>(),
    ) {
        run_case(&ops, key);
    }

    /// Huge intervals covering many stored ones: stresses REMOVEOVERLAP and
    /// read case D recursion.
    #[test]
    fn treap_matches_flat_covering(
        mut ops in proptest::collection::vec(op_strategy(256, 8), 1..80),
        big in proptest::collection::vec((0..200u64, 100..256u64, 0..50u32, any::<bool>()), 1..10),
        key in any::<u64>(),
    ) {
        for (start, len, who, write) in big {
            ops.push(if write {
                Op::Write { start, len, who }
            } else {
                Op::Read { start, len, who }
            });
        }
        run_case(&ops, key);
    }
}

/// Deterministic long-run soak: 20k mixed ops against the oracle with
/// periodic invariant checks (cheaper cadence than the proptest cases).
#[test]
fn long_run_soak() {
    let mut state: u64 = 0x1234_5678;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut treap: Treap<u32> = Treap::with_seed(7);
    let mut flat: FlatStore<u32> = FlatStore::new();
    for i in 0..20_000u64 {
        let start = next() % 4096;
        let len = next() % 64 + 1;
        let who = (next() % 64) as u32;
        let iv = Interval::new(start, start + len, who);
        if next() % 2 == 0 {
            let mut ct = Vec::new();
            let mut cf = Vec::new();
            treap.insert_write(iv, |w, lo, hi| ct.push((w, lo, hi)));
            flat.insert_write(iv, |w, lo, hi| cf.push((w, lo, hi)));
            assert_eq!(normalize_hits(ct), normalize_hits(cf), "op {i}");
        } else {
            treap.insert_read(iv, |old| (who ^ 21) < (old ^ 21));
            flat.insert_read(iv, |old| (who ^ 21) < (old ^ 21));
        }
        if i % 512 == 0 {
            treap.check_invariants();
            assert_eq!(
                normalize(treap.to_vec()),
                normalize(flat.to_vec()),
                "op {i}"
            );
        }
    }
    treap.check_invariants();
    assert_eq!(normalize(treap.to_vec()), normalize(flat.to_vec()));
    // Lemma 4.1 size bound on the final state.
    assert!(treap.len() as u64 <= 2 * treap.insert_ops() + 1);
}
