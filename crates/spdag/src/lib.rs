//! Series-parallel DAG model used for *testing* the production pipeline.
//!
//! This crate provides three things, all deliberately simple and slow:
//!
//! 1. An AST for fork-join programs ([`Func`]/[`Stmt`]) that both the
//!    reference simulator here and the real executor in `stint-cilk` can
//!    interpret, so the two can be compared on identical programs.
//! 2. A reference simulator ([`simulate`]) that unfolds the program into its
//!    series-parallel DAG of strands and computes reachability by transitive
//!    closure — the oracle against which SP-Order is differentially tested.
//! 3. A brute-force race detector ([`Sim::racy_words`]) that considers every
//!    pair of accesses — the oracle against which all four production
//!    detectors are differentially tested.
//!
//! Plus a random program generator ([`random_func`]) for property tests.

use rand::{Rng, RngExt};

/// One instrumented memory access performed by a strand.
///
/// Addresses are abstract word indices (a "word" is the paper's 4-byte shadow
/// granule); `len` is the number of consecutive words touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// True for a store, false for a load.
    pub write: bool,
    /// First word touched.
    pub word: u64,
    /// Number of consecutive words touched (>= 1).
    pub len: u64,
    /// Whether the access is emitted through the *coalesced* hook (models
    /// compile-time coalescing); per-word hooks set this to false.
    pub coalesced: bool,
}

/// A statement of a fork-join program.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// Straight-line code performing memory accesses (no parallel control).
    Compute(Vec<Access>),
    /// `spawn f()` — `f` may run in parallel with the continuation.
    Spawn(Func),
    /// `sync` — wait for all children spawned by the enclosing function since
    /// the previous sync.
    Sync,
    /// A plain serial call, which gets its own sync scope (a Cilk function
    /// implicitly syncs before returning).
    Call(Func),
}

/// A function body. Every function implicitly syncs at its end.
#[derive(Clone, Debug, Default)]
pub struct Func(pub Vec<Stmt>);

impl Func {
    /// Total number of `Compute` accesses in the whole program.
    pub fn access_count(&self) -> usize {
        self.0
            .iter()
            .map(|s| match s {
                Stmt::Compute(v) => v.len(),
                Stmt::Spawn(f) | Stmt::Call(f) => f.access_count(),
                Stmt::Sync => 0,
            })
            .sum()
    }

    /// Number of spawns in the whole program.
    pub fn spawn_count(&self) -> usize {
        self.0
            .iter()
            .map(|s| match s {
                Stmt::Spawn(f) => 1 + f.spawn_count(),
                Stmt::Call(f) => f.spawn_count(),
                _ => 0,
            })
            .sum()
    }
}

/// Identifier of a strand in the unfolded DAG (dense, in creation order).
pub type SimStrand = u32;

/// Result of unfolding a program into its series-parallel DAG.
pub struct Sim {
    /// Accesses performed by each strand.
    pub strand_accesses: Vec<Vec<Access>>,
    /// DAG edges (from, to).
    pub edges: Vec<(SimStrand, SimStrand)>,
    /// Strands in sequential (depth-first, spawned-child-first) execution
    /// order. Every strand appears exactly once.
    pub seq_order: Vec<SimStrand>,
    reach: Vec<Vec<u64>>, // reach[a] bitset: strands reachable from a (a excluded)
}

impl Sim {
    /// Number of strands.
    pub fn strand_count(&self) -> usize {
        self.strand_accesses.len()
    }

    /// True if there is a directed path from `a` to `b` (i.e. `a` logically
    /// precedes `b`); false for `a == b`.
    pub fn precedes(&self, a: SimStrand, b: SimStrand) -> bool {
        a != b && (self.reach[a as usize][(b / 64) as usize] >> (b % 64)) & 1 == 1
    }

    /// True if `a` and `b` are logically parallel.
    pub fn parallel(&self, a: SimStrand, b: SimStrand) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// Brute-force race oracle: the set of words on which two parallel
    /// strands perform conflicting accesses, sorted ascending.
    pub fn racy_words(&self) -> Vec<u64> {
        let n = self.strand_count();
        let mut racy = std::collections::BTreeSet::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if !self.parallel(a, b) {
                    continue;
                }
                for x in &self.strand_accesses[a as usize] {
                    for y in &self.strand_accesses[b as usize] {
                        if !x.write && !y.write {
                            continue;
                        }
                        let lo = x.word.max(y.word);
                        let hi = (x.word + x.len).min(y.word + y.len);
                        for w in lo..hi {
                            racy.insert(w);
                        }
                    }
                }
            }
        }
        racy.into_iter().collect()
    }

    /// All parallel pairs (a, b) with a < b. For tests.
    pub fn parallel_pairs(&self) -> Vec<(SimStrand, SimStrand)> {
        let n = self.strand_count() as u32;
        let mut out = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if self.parallel(a, b) {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

struct SimBuilder {
    strand_accesses: Vec<Vec<Access>>,
    edges: Vec<(SimStrand, SimStrand)>,
    seq_order: Vec<SimStrand>,
}

impl SimBuilder {
    fn new_strand(&mut self) -> SimStrand {
        let id = self.strand_accesses.len() as SimStrand;
        self.strand_accesses.push(Vec::new());
        self.seq_order.push(id);
        id
    }

    /// Execute `f` in a fresh frame whose initial strand is `entry`.
    /// Returns the final strand of the frame (after the implicit sync).
    fn run_func(&mut self, f: &Func, entry: SimStrand) -> SimStrand {
        let mut cur = entry;
        // Strands of completed children awaiting the next sync.
        let mut pending: Vec<SimStrand> = Vec::new();
        for stmt in &f.0 {
            match stmt {
                Stmt::Compute(accs) => {
                    self.strand_accesses[cur as usize].extend_from_slice(accs);
                }
                Stmt::Spawn(g) => {
                    let child = self.new_strand();
                    self.edges.push((cur, child));
                    let child_last = self.run_func(g, child);
                    let cont = self.new_strand();
                    self.edges.push((cur, cont));
                    pending.push(child_last);
                    cur = cont;
                }
                Stmt::Sync => {
                    cur = self.do_sync(cur, &mut pending);
                }
                Stmt::Call(g) => {
                    // A serial call shares the caller's strand on entry but
                    // has its own sync scope; its implicit final sync makes
                    // its children precede everything after the call.
                    cur = self.run_func(g, cur);
                }
            }
        }
        self.do_sync(cur, &mut pending)
    }

    fn do_sync(&mut self, cur: SimStrand, pending: &mut Vec<SimStrand>) -> SimStrand {
        if pending.is_empty() {
            return cur; // sync with no outstanding children is a no-op
        }
        let j = self.new_strand();
        self.edges.push((cur, j));
        for c in pending.drain(..) {
            self.edges.push((c, j));
        }
        j
    }
}

/// Unfold `f` into its series-parallel DAG and precompute reachability.
pub fn simulate(f: &Func) -> Sim {
    let mut b = SimBuilder {
        strand_accesses: Vec::new(),
        edges: Vec::new(),
        seq_order: Vec::new(),
    };
    let root = b.new_strand();
    b.run_func(f, root);
    // Transitive closure over the DAG. Strand ids are created in sequential
    // execution order which is a topological order of the DAG, so a single
    // reverse sweep suffices.
    let n = b.strand_accesses.len();
    let wpr = n.div_ceil(64);
    let mut reach = vec![vec![0u64; wpr]; n];
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(u, v) in &b.edges {
        assert!(u < v, "edges must go forward in sequential order");
        succs[u as usize].push(v);
    }
    for u in (0..n).rev() {
        // reach[u] = union of succ bits and succ reach sets.
        let mut row = vec![0u64; wpr];
        for &v in &succs[u] {
            row[(v / 64) as usize] |= 1u64 << (v % 64);
            for (r, s) in row.iter_mut().zip(reach[v as usize].iter()) {
                *r |= *s;
            }
        }
        reach[u] = row;
    }
    Sim {
        strand_accesses: b.strand_accesses,
        edges: b.edges,
        seq_order: b.seq_order,
        reach,
    }
}

/// Configuration for the random program generator.
#[derive(Clone, Debug)]
pub struct GenCfg {
    /// Maximum nesting depth of spawned/called functions.
    pub max_depth: u32,
    /// Maximum number of statements per function body.
    pub max_stmts: usize,
    /// Word addresses are drawn from `0..word_space`. Small spaces produce
    /// many conflicts (racy programs); large spaces produce race-free ones.
    pub word_space: u64,
    /// Maximum access length in words.
    pub max_len: u64,
    /// Probability that a statement is a spawn (at depth < max_depth).
    pub p_spawn: f64,
    /// Probability that a statement is a sync.
    pub p_sync: f64,
    /// Probability that a statement is a serial call (at depth < max_depth).
    pub p_call: f64,
    /// Probability an access is a write.
    pub p_write: f64,
    /// Maximum accesses per Compute statement.
    pub max_accesses: usize,
}

impl Default for GenCfg {
    fn default() -> Self {
        GenCfg {
            max_depth: 4,
            max_stmts: 6,
            word_space: 64,
            max_len: 8,
            p_spawn: 0.3,
            p_sync: 0.15,
            p_call: 0.1,
            p_write: 0.4,
            max_accesses: 4,
        }
    }
}

/// Generate a random fork-join program.
pub fn random_func<R: Rng>(rng: &mut R, cfg: &GenCfg) -> Func {
    gen_func(rng, cfg, 0)
}

fn gen_func<R: Rng>(rng: &mut R, cfg: &GenCfg, depth: u32) -> Func {
    let n = rng.random_range(1..=cfg.max_stmts);
    let mut stmts = Vec::with_capacity(n);
    for _ in 0..n {
        let r: f64 = rng.random();
        if depth < cfg.max_depth && r < cfg.p_spawn {
            stmts.push(Stmt::Spawn(gen_func(rng, cfg, depth + 1)));
        } else if r < cfg.p_spawn + cfg.p_sync {
            stmts.push(Stmt::Sync);
        } else if depth < cfg.max_depth && r < cfg.p_spawn + cfg.p_sync + cfg.p_call {
            stmts.push(Stmt::Call(gen_func(rng, cfg, depth + 1)));
        } else {
            let k = rng.random_range(1..=cfg.max_accesses);
            let accs = (0..k)
                .map(|_| {
                    let len = rng.random_range(1..=cfg.max_len);
                    let word = rng.random_range(0..cfg.word_space);
                    Access {
                        write: rng.random_bool(cfg.p_write),
                        word,
                        len,
                        coalesced: rng.random_bool(0.5),
                    }
                })
                .collect();
            stmts.push(Stmt::Compute(accs));
        }
    }
    Func(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn acc(write: bool, word: u64, len: u64) -> Access {
        Access {
            write,
            word,
            len,
            coalesced: false,
        }
    }

    /// spawn { w0 }; w0; sync  — child and continuation race on word 0.
    #[test]
    fn basic_spawn_race() {
        let f = Func(vec![
            Stmt::Spawn(Func(vec![Stmt::Compute(vec![acc(true, 0, 1)])])),
            Stmt::Compute(vec![acc(true, 0, 1)]),
            Stmt::Sync,
        ]);
        let sim = simulate(&f);
        assert_eq!(sim.racy_words(), vec![0]);
    }

    /// spawn { w0 }; sync; w0  — no race: sync orders the accesses.
    #[test]
    fn sync_removes_race() {
        let f = Func(vec![
            Stmt::Spawn(Func(vec![Stmt::Compute(vec![acc(true, 0, 1)])])),
            Stmt::Sync,
            Stmt::Compute(vec![acc(true, 0, 1)]),
        ]);
        let sim = simulate(&f);
        assert!(sim.racy_words().is_empty());
    }

    /// Two spawned children race with each other.
    #[test]
    fn sibling_race() {
        let f = Func(vec![
            Stmt::Spawn(Func(vec![Stmt::Compute(vec![acc(true, 5, 2)])])),
            Stmt::Spawn(Func(vec![Stmt::Compute(vec![acc(false, 6, 2)])])),
            Stmt::Sync,
        ]);
        let sim = simulate(&f);
        assert_eq!(sim.racy_words(), vec![6]);
    }

    /// Read-read sharing is not a race.
    #[test]
    fn read_read_is_not_a_race() {
        let f = Func(vec![
            Stmt::Spawn(Func(vec![Stmt::Compute(vec![acc(false, 0, 4)])])),
            Stmt::Compute(vec![acc(false, 0, 4)]),
            Stmt::Sync,
        ]);
        assert!(simulate(&f).racy_words().is_empty());
    }

    /// A serial Call's implicit sync orders its children before the caller's
    /// subsequent statements.
    #[test]
    fn call_implicit_sync() {
        let f = Func(vec![
            Stmt::Call(Func(vec![Stmt::Spawn(Func(vec![Stmt::Compute(vec![
                acc(true, 7, 1),
            ])]))])),
            Stmt::Compute(vec![acc(true, 7, 1)]),
        ]);
        assert!(simulate(&f).racy_words().is_empty());
    }

    /// But a Spawn without an intervening sync does race with the caller.
    #[test]
    fn implicit_sync_applies_at_function_end_only() {
        let f = Func(vec![
            Stmt::Spawn(Func(vec![Stmt::Compute(vec![acc(true, 7, 1)])])),
            Stmt::Compute(vec![acc(true, 7, 1)]),
            // no sync: implicit one at end of f, after the conflicting access
        ]);
        assert_eq!(simulate(&f).racy_words(), vec![7]);
    }

    #[test]
    fn seq_order_is_topological() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let f = random_func(&mut rng, &GenCfg::default());
            let sim = simulate(&f);
            for &(u, v) in &sim.edges {
                assert!(u < v);
            }
            // Sequential order is just 0..n by construction.
            assert_eq!(
                sim.seq_order,
                (0..sim.strand_count() as u32).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn reachability_is_transitive_and_antisymmetric() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let f = random_func(&mut rng, &GenCfg::default());
            let sim = simulate(&f);
            let n = sim.strand_count() as u32;
            for a in 0..n {
                for b in 0..n {
                    if sim.precedes(a, b) {
                        assert!(!sim.precedes(b, a), "antisymmetry violated");
                        for c in 0..n {
                            if sim.precedes(b, c) {
                                assert!(sim.precedes(a, c), "transitivity violated");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn nested_spawn_parallelism() {
        // spawn { spawn {A}; B; sync }; C; sync
        // A ∥ B, A ∥ C, B ∥ C.
        let f = Func(vec![
            Stmt::Spawn(Func(vec![
                Stmt::Spawn(Func(vec![Stmt::Compute(vec![acc(true, 1, 1)])])),
                Stmt::Compute(vec![acc(true, 2, 1)]),
                Stmt::Sync,
            ])),
            Stmt::Compute(vec![acc(true, 3, 1)]),
            Stmt::Sync,
        ]);
        let sim = simulate(&f);
        assert!(sim.racy_words().is_empty()); // distinct words: no races
                                              // Find the three strands holding the accesses.
        let find = |w: u64| -> u32 {
            sim.strand_accesses
                .iter()
                .position(|v| v.iter().any(|a| a.word == w))
                .unwrap() as u32
        };
        let (a, b, c) = (find(1), find(2), find(3));
        assert!(sim.parallel(a, b));
        assert!(sim.parallel(a, c));
        assert!(sim.parallel(b, c));
    }
}
