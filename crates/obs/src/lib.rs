//! Unified observability for the detector stack: structured metrics, span
//! tracing, and JSON export.
//!
//! The paper's evaluation is all about *seeing inside* the access history —
//! interval counts, coalescing rates, where detection time goes. This crate
//! is the single substrate every layer reports into:
//!
//! * **Counters** ([`Counter`]) — named monotonic `u64`s declared as
//!   `static`s per crate (`om.relabels`, `ivtree.rotations`, …).
//! * **Gauges** ([`Gauge`]) — current value plus high watermark for
//!   quantities that go both up and down, chiefly live byte accounting
//!   (`ivtree.bytes`, `shadow.word_bytes`, …). [`Gauge::reconcile`] is the
//!   arena pattern: owners track the bytes they last reported and publish
//!   deltas, so the gauge stays exact across reallocation and drop. A
//!   periodic [`sampler`] snapshots every gauge into a time series.
//! * **Histograms** ([`Histogram`]) — log2-bucketed value distributions
//!   (relabel widths, per-op nodes visited).
//! * **Spans** ([`span`]) — lightweight start/stop timing with thread-local
//!   buffers, subsuming the `FlushTimer` off/sampled/full gate: the span
//!   mode is part of the process-wide [`ObsConfig`].
//! * **Events** ([`event`]) — zero-duration instants tagged into the same
//!   stream (fault injections, lost timing overrides).
//!
//! Two exporters serialize the registry with no external dependencies:
//! [`metrics_json`] (a flat snapshot keyed by counter name) and
//! [`trace_json`] (Chrome/Perfetto `trace_event` format — load the file at
//! `ui.perfetto.dev` or `chrome://tracing`).
//!
//! # Zero cost when disabled
//!
//! The layer follows the `stint-faults` pattern exactly: every counter add,
//! histogram observe, span open and event goes through one relaxed load of a
//! global `AtomicBool` ([`is_enabled`]); with observability off that load is
//! the **entire** cost, nothing registers, and the global registry is never
//! initialized ([`registry_initialized`] stays `false` — asserted by the
//! perf gate, whose ±15% bound enforces the claim empirically).
//!
//! Configuration comes from the `STINT_OBS` environment variable
//! ([`enable_from_env`]) or the CLI `--obs` flag; specs look like
//! `on`, `counters`, `spans=full`, `full` (see [`ObsConfig::parse`]).
//!
//! # Registration without life-before-main
//!
//! Rust has no portable static constructors, so counters self-register
//! lazily: the first touch of an enabled counter pushes `&'static self` into
//! the registry under a mutex; every later touch is a relaxed flag check
//! plus a relaxed `fetch_add`. A counter that is never touched (or only
//! touched while disabled) is invisible to the exporters.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Span recording mode, subsuming the `FlushTimer` gate's three settings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpanMode {
    /// Never read the clock; [`span`] returns an inert guard.
    Off,
    /// Record every [`SAMPLE_PERIOD`]th span per thread (cheap, unbiased
    /// when span cost is stationary). Instant events are always recorded.
    #[default]
    Sampled,
    /// Record every span (exact; two clock reads per span).
    Full,
}

/// Spans are sampled one-in-`SAMPLE_PERIOD` per thread under
/// [`SpanMode::Sampled`] (matches `stint::timing::SAMPLE_PERIOD`).
pub const SAMPLE_PERIOD: u32 = 64;

/// Process-wide observability configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    pub spans: SpanMode,
    /// Periodic gauge-snapshot interval in milliseconds (`None` = sampler
    /// off). Set via the `sample=N` spec key; snapshots feed the memory
    /// time-series exporter and the Perfetto counter track.
    pub sample_ms: Option<u64>,
}

impl ObsConfig {
    /// Counters only, spans off.
    pub const COUNTERS: ObsConfig = ObsConfig {
        spans: SpanMode::Off,
        sample_ms: None,
    };
    /// Counters plus full (every-span) tracing.
    pub const FULL: ObsConfig = ObsConfig {
        spans: SpanMode::Full,
        sample_ms: None,
    };

    /// Parse an `STINT_OBS` / `--obs` spec. Returns `Ok(None)` when the spec
    /// explicitly disables observability (`off` / `0` / empty).
    ///
    /// | spec | meaning |
    /// |---|---|
    /// | `off`, `0`, `` | disabled (zero-cost path) |
    /// | `on`, `1`, `sampled` | counters + sampled spans (the default config) |
    /// | `counters` | counters only, spans off |
    /// | `full` | counters + every span recorded |
    /// | `spans=off\|sampled\|full` | counters + explicit span mode |
    /// | `sample=N` | counters + gauge snapshots every `N` ms (`0` = off) |
    ///
    /// Comma-separated parts compose (`counters,spans=full` ≡ `full`); the
    /// last span setting wins. Unknown keys are errors (surfaced as CLI
    /// usage errors, exit 2).
    pub fn parse(spec: &str) -> Result<Option<ObsConfig>, String> {
        let mut cfg = ObsConfig::default();
        let mut enabled = false;
        for part in spec.split(',') {
            let part = part.trim();
            match part {
                "" => continue,
                "off" | "0" => enabled = false,
                "on" | "1" | "sampled" => {
                    enabled = true;
                    cfg.spans = SpanMode::Sampled;
                }
                "counters" => {
                    enabled = true;
                    cfg.spans = SpanMode::Off;
                }
                "full" => {
                    enabled = true;
                    cfg.spans = SpanMode::Full;
                }
                _ => match part.split_once('=') {
                    Some(("spans", v)) => {
                        enabled = true;
                        cfg.spans = match v.trim() {
                            "off" => SpanMode::Off,
                            "sampled" => SpanMode::Sampled,
                            "full" => SpanMode::Full,
                            other => return Err(format!("unknown span mode {other:?}")),
                        };
                    }
                    Some(("sample", v)) => {
                        enabled = true;
                        let ms: u64 = v
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad sample interval {v:?}"))?;
                        cfg.sample_ms = (ms > 0).then_some(ms);
                    }
                    _ => return Err(format!("unknown obs setting {part:?}")),
                },
            }
        }
        Ok(enabled.then_some(cfg))
    }
}

/// Fast gate: true only while observability is enabled. One relaxed atomic
/// load — this is the entire disabled-path cost of the layer.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Encoded [`SpanMode`]; only consulted when [`ENABLED`] is set.
static SPAN_MODE: AtomicU32 = AtomicU32::new(0);
/// Monotonic per-thread trace ids, handed out on first span per thread.
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// True while observability is enabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The effective span mode ([`SpanMode::Off`] whenever disabled).
pub fn span_mode() -> SpanMode {
    if !is_enabled() {
        return SpanMode::Off;
    }
    match SPAN_MODE.load(Ordering::Relaxed) {
        2 => SpanMode::Full,
        1 => SpanMode::Sampled,
        _ => SpanMode::Off,
    }
}

/// Enable observability process-wide with the given configuration.
pub fn enable(cfg: ObsConfig) {
    let mode = match cfg.spans {
        SpanMode::Off => 0,
        SpanMode::Sampled => 1,
        SpanMode::Full => 2,
    };
    SPAN_MODE.store(mode, Ordering::Relaxed);
    sampler::set_interval_ms(cfg.sample_ms.unwrap_or(0));
    ENABLED.store(true, Ordering::Release);
    if cfg.sample_ms.is_some() {
        sampler::start();
    }
}

/// Back to the zero-cost disabled state. Already-recorded data stays in the
/// registry (exporters still see it); nothing new is recorded. A running
/// sampler thread notices and exits on its next wakeup.
pub fn disable() {
    sampler::set_interval_ms(0);
    ENABLED.store(false, Ordering::Release);
}

/// Environment variable consulted by [`enable_from_env`].
pub const ENV_VAR: &str = "STINT_OBS";

/// Enable from the `STINT_OBS` environment variable, if set to an enabling
/// spec. Returns whether observability was enabled; a malformed spec is an
/// error.
pub fn enable_from_env() -> Result<bool, String> {
    match std::env::var(ENV_VAR) {
        Ok(spec) => {
            match ObsConfig::parse(&spec).map_err(|e| format!("{ENV_VAR}={spec:?}: {e}"))? {
                Some(cfg) => {
                    enable(cfg);
                    Ok(true)
                }
                None => Ok(false),
            }
        }
        _ => Ok(false),
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A recorded span or instant event.
#[derive(Clone, Copy, Debug)]
struct SpanRec {
    name: &'static str,
    tid: u32,
    start_ns: u64,
    dur_ns: u64,
    instant: bool,
}

/// One periodic gauge snapshot taken by the [`sampler`].
#[derive(Clone, Debug)]
struct Snapshot {
    /// Nanoseconds since the registry epoch (the span time origin).
    t_ns: u64,
    /// `(gauge name, current value)` pairs at snapshot time.
    values: Vec<(&'static str, u64)>,
}

struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
    /// Late-bound named values (e.g. `DetectorStats` published at the end of
    /// a run) that have no static `Counter` declaration.
    named: BTreeMap<&'static str, u64>,
    spans: Vec<SpanRec>,
    /// Periodic gauge snapshots (memory time series).
    samples: Vec<Snapshot>,
    /// Process time origin for span timestamps, fixed at first registry use.
    epoch: Instant,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> MutexGuard<'static, Registry> {
    REGISTRY
        .get_or_init(|| {
            Mutex::new(Registry {
                counters: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
                named: BTreeMap::new(),
                spans: Vec::new(),
                samples: Vec::new(),
                epoch: Instant::now(),
            })
        })
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// True once anything has actually been recorded. With observability
/// disabled nothing ever registers, so a full benchmark run leaves this
/// `false` — the disabled-path guarantee mirrored from `stint-faults`
/// (asserted by `tests/obs_disabled.rs` and the perf gate).
pub fn registry_initialized() -> bool {
    REGISTRY.get().is_some()
}

/// Add `n` to the late-bound named counter `name` (cold path: takes the
/// registry lock every call). Used to publish end-of-run `DetectorStats`
/// into the same namespace as the static counters.
pub fn add(name: &'static str, n: u64) {
    if !is_enabled() {
        return;
    }
    *registry().named.entry(name).or_insert(0) += n;
}

/// Reset every registered counter, histogram, named value and recorded span
/// to zero/empty (test isolation; spans buffered in *other* threads that
/// have not yet flushed are not reachable and survive a reset).
pub fn reset() {
    flush_thread_spans();
    if !registry_initialized() {
        return;
    }
    let mut reg = registry();
    for c in &reg.counters {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in &reg.gauges {
        g.value.store(0, Ordering::Relaxed);
        g.hw.store(0, Ordering::Relaxed);
    }
    for h in &reg.histograms {
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
    reg.named.clear();
    reg.spans.clear();
    reg.samples.clear();
    reg.epoch = Instant::now();
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A named monotonic counter (or, via [`Counter::record_max`], a high-water
/// gauge). Declare as a `static` and touch from anywhere:
///
/// ```
/// static RELABELS: stint_obs::Counter = stint_obs::Counter::new("om.relabels");
/// let _scope = stint_obs::ScopedObs::enable(stint_obs::ObsConfig::COUNTERS);
/// RELABELS.incr();
/// assert_eq!(RELABELS.get(), 1);
/// ```
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current value (0 until first enabled touch).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Add `n`. No-op (one relaxed load) while disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !is_enabled() {
            return;
        }
        self.register();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1. No-op (one relaxed load) while disabled.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1)
    }

    /// Raise the value to at least `v` (high-water gauge). No-op while
    /// disabled.
    #[inline]
    pub fn record_max(&'static self, v: u64) {
        if !is_enabled() {
            return;
        }
        self.register();
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed) {
            self.register_slow();
        }
    }

    #[cold]
    fn register_slow(&'static self) {
        let mut reg = registry();
        // The swap under the lock makes the registration unique even when
        // two threads race their first touch.
        if !self.registered.swap(true, Ordering::Relaxed) {
            reg.counters.push(self);
        }
    }
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

/// A named up-down gauge with a high watermark — the primitive for "bytes
/// currently held" accounting. Same lazily-self-registering statics and
/// one-relaxed-load disabled path as [`Counter`]; unlike a counter, a gauge
/// can go down, and its peak is tracked separately so currents and
/// watermarks are never conflated in the metrics export:
///
/// ```
/// static BYTES: stint_obs::Gauge = stint_obs::Gauge::new("test.doc_bytes");
/// let _scope = stint_obs::ScopedObs::enable(stint_obs::ObsConfig::COUNTERS);
/// BYTES.add(4096);
/// BYTES.sub(1024);
/// assert_eq!(BYTES.get(), 3072);
/// assert_eq!(BYTES.high_water(), 4096);
/// ```
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    hw: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicU64::new(0),
            hw: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current value (0 until first enabled touch).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever reached (0 until first enabled touch).
    pub fn high_water(&self) -> u64 {
        self.hw.load(Ordering::Relaxed)
    }

    /// Raise the gauge by `n` and push the watermark. No-op (one relaxed
    /// load) while disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !is_enabled() {
            return;
        }
        self.register();
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.hw.fetch_max(now, Ordering::Relaxed);
    }

    /// Lower the gauge by `n`, saturating at zero (an enable mid-lifetime
    /// can observe a release without its matching acquire). No-op (one
    /// relaxed load) while disabled.
    #[inline]
    pub fn sub(&'static self, n: u64) {
        if !is_enabled() {
            return;
        }
        self.register();
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Reconcile an instance-local accounted size with the gauge: `*owned`
    /// holds the bytes this instance last reported; the difference to `now`
    /// is added to / subtracted from the gauge and `*owned` becomes `now`.
    /// This is the one-line pattern every arena uses after a growth step
    /// (and in `Drop` with `now = 0`). No-op while disabled — `*owned` is
    /// then left untouched, so a later enabled drop cannot underflow.
    #[inline]
    pub fn reconcile(&'static self, owned: &mut u64, now: u64) {
        if !is_enabled() {
            return;
        }
        let old = *owned;
        *owned = now;
        if now > old {
            self.add(now - old);
        } else if old > now {
            self.sub(old - now);
        }
    }

    #[inline]
    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed) {
            self.register_slow();
        }
    }

    #[cold]
    fn register_slow(&'static self) {
        let mut reg = registry();
        if !self.registered.swap(true, Ordering::Relaxed) {
            reg.gauges.push(self);
        }
    }
}

/// Snapshot every registered gauge as `(name, current, high_water)` triples,
/// sorted by name. Empty — without initializing the registry — when nothing
/// has registered (in particular whenever observability was never enabled).
pub fn gauges_snapshot() -> Vec<(&'static str, u64, u64)> {
    if REGISTRY.get().is_none() {
        return Vec::new();
    }
    let reg = registry();
    let mut rows: Vec<(&'static str, u64, u64)> = reg
        .gauges
        .iter()
        .map(|g| (g.name, g.get(), g.high_water()))
        .collect();
    rows.sort_by_key(|(name, ..)| *name);
    rows
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i` holds
/// values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (relabel widths, per-op nodes
/// visited, treap depths). Same registration discipline as [`Counter`].
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    pub const fn new(name: &'static str) -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample. No-op (one relaxed load) while disabled.
    #[inline]
    pub fn observe(&'static self, v: u64) {
        if !is_enabled() {
            return;
        }
        if !self.registered.load(Ordering::Relaxed) {
            self.register_slow();
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of all [`BUCKETS`] bucket counts (index = log2 bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) of the recorded samples
    /// from the log2 buckets. See [`quantile_from_buckets`] for the
    /// estimation rule; returns 0.0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        quantile_from_buckets(&counts, q)
    }

    #[cold]
    fn register_slow(&'static self) {
        let mut reg = registry();
        if !self.registered.swap(true, Ordering::Relaxed) {
            reg.histograms.push(self);
        }
    }
}

/// Estimate the `q`-quantile from an array of log2 bucket counts (index
/// layout of [`Histogram`]: bucket 0 holds the value 0, bucket `i` holds
/// `[2^(i-1), 2^i)`). The target rank is `ceil(q * count)` clamped to
/// `[1, count]`; within the bucket holding that rank the estimate
/// interpolates linearly between the bucket bounds. Empty input → 0.0.
///
/// Factored out of [`Histogram::quantile`] so callers holding *merged*
/// bucket arrays (e.g. the serve driver summing per-status latency
/// histograms) can run the same estimator.
pub fn quantile_from_buckets(buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut before = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if before + n >= target {
            if i == 0 {
                return 0.0;
            }
            let lo = (1u128 << (i - 1)) as f64;
            let hi = (1u128 << i) as f64;
            // Midpoint-rank interpolation keeps the estimate strictly
            // inside the half-open bucket even at q = 1.0.
            let frac = ((target - before) as f64 - 0.5) / n as f64;
            return lo + frac * (hi - lo);
        }
        before += n;
    }
    // Unreachable: target ≤ total and the loop covers every sample.
    0.0
}

/// One histogram in a [`histograms_snapshot`]: name, sample count, sample
/// sum, and all [`BUCKETS`] bucket counts (index = log2 bucket).
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    pub name: &'static str,
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<u64>,
}

/// Snapshot every registered histogram, sorted by name. Empty — without
/// initializing the registry — when nothing has registered (in particular
/// whenever observability was never enabled).
pub fn histograms_snapshot() -> Vec<HistSnapshot> {
    if REGISTRY.get().is_none() {
        return Vec::new();
    }
    let reg = registry();
    let mut rows: Vec<HistSnapshot> = reg
        .histograms
        .iter()
        .map(|h| HistSnapshot {
            name: h.name,
            count: h.count(),
            sum: h.sum(),
            buckets: h.bucket_counts(),
        })
        .collect();
    rows.sort_by_key(|s| s.name);
    rows
}

// ---------------------------------------------------------------------------
// Spans and events
// ---------------------------------------------------------------------------

struct ThreadSpans {
    tid: u32,
    epoch: Instant,
    buf: Vec<SpanRec>,
    /// Per-thread span sequence number driving [`SpanMode::Sampled`].
    seq: u32,
}

impl ThreadSpans {
    fn flush(&mut self) {
        if !self.buf.is_empty() {
            registry().spans.append(&mut self.buf);
        }
    }
}

impl Drop for ThreadSpans {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static SPANS: RefCell<Option<ThreadSpans>> = const { RefCell::new(None) };
}

/// Thread-local buffers flush into the global registry at this size.
const SPAN_FLUSH_AT: usize = 1024;

fn with_thread_spans<R>(f: impl FnOnce(&mut ThreadSpans) -> R) -> Option<R> {
    SPANS
        .try_with(|cell| {
            let mut slot = cell.borrow_mut();
            let ts = slot.get_or_insert_with(|| {
                let epoch = registry().epoch;
                ThreadSpans {
                    tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                    epoch,
                    buf: Vec::new(),
                    seq: 0,
                }
            });
            f(ts)
        })
        .ok()
}

/// Flush the current thread's span buffer into the registry (exporters call
/// this so same-thread spans are always visible; other threads flush at
/// [`SPAN_FLUSH_AT`] and on thread exit).
pub fn flush_thread_spans() {
    if REGISTRY.get().is_none() {
        return;
    }
    SPANS
        .try_with(|cell| {
            if let Some(ts) = cell.borrow_mut().as_mut() {
                ts.flush();
            }
        })
        .ok();
}

/// RAII guard returned by [`span`]; records the span on drop.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// True if this span is actually being timed (false when disabled or
    /// skipped by sampling) — lets callers gate *extra* work, never needed
    /// for correctness.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            with_thread_spans(|ts| {
                let start_ns = t0.duration_since(ts.epoch).as_nanos() as u64;
                ts.buf.push(SpanRec {
                    name: self.name,
                    tid: ts.tid,
                    start_ns,
                    dur_ns,
                    instant: false,
                });
                if ts.buf.len() >= SPAN_FLUSH_AT {
                    ts.flush();
                }
            });
        }
    }
}

/// Open a timed span; the returned guard records `name` with its duration
/// when dropped. Costs one relaxed load when disabled; under
/// [`SpanMode::Sampled`] one span in [`SAMPLE_PERIOD`] per thread is timed.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let start = match span_mode() {
        SpanMode::Off => None,
        SpanMode::Full => Some(Instant::now()),
        SpanMode::Sampled => with_thread_spans(|ts| {
            let take = ts.seq & (SAMPLE_PERIOD - 1) == 0;
            ts.seq = ts.seq.wrapping_add(1);
            take
        })
        .unwrap_or(false)
        .then(Instant::now),
    };
    SpanGuard { name, start }
}

/// Record a zero-duration instant event (fault injections, lost overrides).
/// Never sampled away: when spans are on at all, every event is kept.
#[inline]
pub fn event(name: &'static str) {
    if span_mode() == SpanMode::Off {
        return;
    }
    let now = Instant::now();
    with_thread_spans(|ts| {
        let start_ns = now.duration_since(ts.epoch).as_nanos() as u64;
        ts.buf.push(SpanRec {
            name,
            tid: ts.tid,
            start_ns,
            dur_ns: 0,
            instant: true,
        });
        if ts.buf.len() >= SPAN_FLUSH_AT {
            ts.flush();
        }
    });
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

/// Periodic gauge-snapshot sampler.
///
/// When [`ObsConfig::sample_ms`] is set, [`enable`] starts one background
/// thread that calls [`sampler::sample_now`] on the configured interval.
/// Each snapshot records every registered gauge's current value against the
/// registry epoch (the same time origin spans use), building the memory
/// time series exported by [`write_mem_series_json`] and merged into the
/// Perfetto trace as `counter`-phase events by [`write_trace_json`]. The
/// thread exits on [`disable`] (or when the interval is set to 0) at its
/// next wakeup; sampling threads never outlive an enabled configuration by
/// more than one interval.
pub mod sampler {
    use super::*;
    use std::time::Duration;

    /// Interval in ms; 0 means the sampler is off (thread exits).
    static INTERVAL_MS: AtomicU64 = AtomicU64::new(0);
    /// True while a sampler thread is alive (spawn guard).
    static RUNNING: AtomicBool = AtomicBool::new(false);

    pub(crate) fn set_interval_ms(ms: u64) {
        INTERVAL_MS.store(ms, Ordering::Relaxed);
    }

    /// The configured snapshot interval, if sampling is on.
    pub fn interval_ms() -> Option<u64> {
        match INTERVAL_MS.load(Ordering::Relaxed) {
            0 => None,
            ms => Some(ms),
        }
    }

    /// Take one gauge snapshot right now (the sampler thread's body; also
    /// callable directly, e.g. by tests or at run boundaries, so a series
    /// exists even when the run is shorter than one interval).
    pub fn sample_now() {
        if !is_enabled() {
            return;
        }
        let mut reg = registry();
        let t_ns = reg.epoch.elapsed().as_nanos() as u64;
        #[allow(unused_mut)]
        let mut values: Vec<(&'static str, u64)> =
            reg.gauges.iter().map(|g| (g.name, g.get())).collect();
        #[cfg(feature = "obs-alloc")]
        values.push(("process.alloc_bytes", crate::alloc_track::live_bytes()));
        values.sort_by_key(|(name, _)| *name);
        reg.samples.push(Snapshot { t_ns, values });
    }

    /// Number of snapshots recorded so far.
    pub fn samples_recorded() -> usize {
        if REGISTRY.get().is_none() {
            return 0;
        }
        registry().samples.len()
    }

    pub(crate) fn start() {
        if RUNNING.swap(true, Ordering::AcqRel) {
            return; // a sampler thread is already alive
        }
        let spawned = std::thread::Builder::new()
            .name("stint-obs-sampler".into())
            .spawn(|| {
                loop {
                    let ms = INTERVAL_MS.load(Ordering::Relaxed);
                    if ms == 0 || !is_enabled() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(ms));
                    sample_now();
                }
                RUNNING.store(false, Ordering::Release);
            });
        if spawned.is_err() {
            // Thread spawn failure degrades to no sampling; callers can
            // still `sample_now` manually.
            RUNNING.store(false, Ordering::Release);
        }
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Lock-free bounded ring buffer of fixed-size structured events — the
/// daemon's black box. Writers claim a slot with one `fetch_add` on a
/// global cursor and publish the record with a stamp protocol (stamp 0 =
/// being written; stamp `i+1` = record `i` complete), so concurrent
/// writers never block and a reader can always take a consistent snapshot:
/// it re-reads each slot's stamp after the payload words and drops torn
/// slots. The ring holds the most recent [`flight::CAP`] records; older
/// ones are overwritten.
///
/// Recording is gated on [`is_enabled`] — one relaxed load, no record, no
/// cursor movement while disabled — and keeps its own statics, so it never
/// initializes the metrics registry.
pub mod flight {
    use super::*;

    /// Ring capacity (power of two). The last `CAP` records survive.
    pub const CAP: usize = 1024;

    /// One decoded flight-recorder record.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct FlightEvent {
        /// Nanoseconds since the recorder epoch (first enabled record).
        pub t_ns: u64,
        /// Session id the event belongs to (0 = daemon-level).
        pub session: u32,
        /// Event kind code — the *caller's* namespace (the serve crate
        /// defines its lifecycle kinds); the recorder stores it opaquely.
        pub kind: u16,
        /// Status/verdict code, caller-defined.
        pub status: u16,
        /// One payload word (queue depth, latency ms, error code, …).
        pub payload: u64,
    }

    struct Slot {
        /// 0 = empty or mid-write; `i + 1` = holds record number `i`.
        stamp: AtomicU64,
        t_ns: AtomicU64,
        /// `session << 32 | kind << 16 | status`.
        meta: AtomicU64,
        payload: AtomicU64,
    }

    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY: Slot = Slot {
        stamp: AtomicU64::new(0),
        t_ns: AtomicU64::new(0),
        meta: AtomicU64::new(0),
        payload: AtomicU64::new(0),
    };
    static SLOTS: [Slot; CAP] = [EMPTY; CAP];
    /// Total records ever written (also the next record number).
    static CURSOR: AtomicU64 = AtomicU64::new(0);
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    fn epoch() -> Instant {
        *EPOCH.get_or_init(Instant::now)
    }

    /// Record one event. No-op (one relaxed load) while disabled.
    #[inline]
    pub fn record(session: u32, kind: u16, status: u16, payload: u64) {
        if !is_enabled() {
            return;
        }
        let t_ns = epoch().elapsed().as_nanos() as u64;
        let i = CURSOR.fetch_add(1, Ordering::Relaxed);
        let slot = &SLOTS[(i as usize) & (CAP - 1)];
        // Invalidate, write the words, then publish the new stamp; a
        // reader that races sees stamp 0 or mismatched stamps and skips.
        slot.stamp.store(0, Ordering::Release);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        let meta = ((session as u64) << 32) | ((kind as u64) << 16) | status as u64;
        slot.meta.store(meta, Ordering::Relaxed);
        slot.payload.store(payload, Ordering::Relaxed);
        slot.stamp.store(i + 1, Ordering::Release);
    }

    /// Total records ever written (monotone; records beyond [`CAP`] ago
    /// have been overwritten).
    pub fn records_written() -> u64 {
        CURSOR.load(Ordering::Relaxed)
    }

    /// Consistent snapshot of the surviving records, oldest first. Slots
    /// being overwritten during the scan are skipped (torn-read check via
    /// the stamp protocol), so a snapshot under concurrent writers returns
    /// slightly fewer than [`CAP`] records rather than garbage.
    pub fn snapshot() -> Vec<FlightEvent> {
        let cursor = CURSOR.load(Ordering::Acquire);
        let oldest = cursor.saturating_sub(CAP as u64);
        let mut rows: Vec<(u64, FlightEvent)> = Vec::new();
        for slot in &SLOTS {
            let s1 = slot.stamp.load(Ordering::Acquire);
            if s1 == 0 {
                continue;
            }
            let t_ns = slot.t_ns.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let payload = slot.payload.load(Ordering::Relaxed);
            let s2 = slot.stamp.load(Ordering::Acquire);
            let rec = s1 - 1;
            if s1 != s2 || rec < oldest || rec >= cursor.max(s1) {
                continue; // torn or stale slot
            }
            rows.push((
                rec,
                FlightEvent {
                    t_ns,
                    session: (meta >> 32) as u32,
                    kind: ((meta >> 16) & 0xffff) as u16,
                    status: (meta & 0xffff) as u16,
                    payload,
                },
            ));
        }
        rows.sort_by_key(|(rec, _)| *rec);
        rows.into_iter().map(|(_, e)| e).collect()
    }

    /// Drop every record and rewind the cursor (test isolation / fresh
    /// soak phases). Not linearizable against concurrent writers.
    pub fn reset() {
        for slot in &SLOTS {
            slot.stamp.store(0, Ordering::Release);
        }
        CURSOR.store(0, Ordering::Release);
    }

    /// Dump the snapshot as JSON (`stint-flight-v1`):
    ///
    /// ```json
    /// {
    ///   "schema": "stint-flight-v1",
    ///   "records_written": 2048,
    ///   "records": [
    ///     { "t_ns": 12345, "session": 7, "kind": 2, "status": 0,
    ///       "payload": 42 },
    ///     ...
    ///   ]
    /// }
    /// ```
    pub fn write_json<W: Write>(mut w: W) -> std::io::Result<()> {
        let records = snapshot();
        writeln!(w, "{{")?;
        writeln!(w, "  \"schema\": \"stint-flight-v1\",")?;
        writeln!(w, "  \"records_written\": {},", records_written())?;
        writeln!(w, "  \"records\": [")?;
        for (i, r) in records.iter().enumerate() {
            let comma = if i + 1 < records.len() { "," } else { "" };
            writeln!(
                w,
                "    {{ \"t_ns\": {}, \"session\": {}, \"kind\": {}, \
                 \"status\": {}, \"payload\": {} }}{comma}",
                r.t_ns, r.session, r.kind, r.status, r.payload
            )?;
        }
        writeln!(w, "  ]")?;
        writeln!(w, "}}")
    }

    /// [`write_json`] into a `String`.
    pub fn json() -> String {
        let mut buf = Vec::new();
        write_json(&mut buf).expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("flight JSON is ASCII")
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Escape `s` for inclusion in a JSON string literal (quotes, backslashes
/// and control characters). Shared by the exporters here and by downstream
/// hand-rolled JSON writers (the CLI's `--stats-json`).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize the registry as a flat metrics JSON object:
///
/// ```json
/// {
///   "schema": "stint-obs-metrics-v1",
///   "counters": { "om.relabels": 3, ... },
///   "gauges": { "ivtree.bytes": { "current": 0, "hw": 8192 }, ... },
///   "histograms": {
///     "ivtree.op_visited": {
///       "count": 10, "sum": 57,
///       "buckets": [ { "log2": 2, "count": 4 }, ... ]
///     }
///   },
///   "spans_recorded": 128
/// }
/// ```
///
/// Bucket `log2 = i` counts samples in `[2^(i-1), 2^i)` (`log2 = 0` counts
/// exact zeros); empty buckets are omitted. Keys are sorted, so the output
/// is deterministic for a deterministic run.
pub fn write_metrics_json<W: Write>(mut w: W) -> std::io::Result<()> {
    // (name, count, sum, non-empty (log2-bucket, count) pairs).
    type HistRow = (&'static str, u64, u64, Vec<(usize, u64)>);
    flush_thread_spans();
    // Snapshot under the lock, format outside it.
    let (counters, gauges, histograms, span_count) = {
        if REGISTRY.get().is_none() {
            (BTreeMap::new(), Vec::new(), Vec::new(), 0)
        } else {
            let reg = registry();
            let mut counters: BTreeMap<&'static str, u64> = reg.named.clone();
            for c in &reg.counters {
                *counters.entry(c.name).or_insert(0) += c.get();
            }
            let mut gauges: Vec<(&'static str, u64, u64)> = reg
                .gauges
                .iter()
                .map(|g| (g.name, g.get(), g.high_water()))
                .collect();
            gauges.sort_by_key(|(name, ..)| *name);
            let mut histograms: Vec<HistRow> = reg
                .histograms
                .iter()
                .map(|h| {
                    let buckets: Vec<(usize, u64)> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then_some((i, n))
                        })
                        .collect();
                    (h.name, h.count(), h.sum(), buckets)
                })
                .collect();
            histograms.sort_by_key(|(name, ..)| *name);
            (counters, gauges, histograms, reg.spans.len())
        }
    };
    writeln!(w, "{{")?;
    writeln!(w, "  \"schema\": \"stint-obs-metrics-v1\",")?;
    writeln!(w, "  \"counters\": {{")?;
    let mut first = true;
    for (name, v) in &counters {
        if !first {
            writeln!(w, ",")?;
        }
        first = false;
        write!(w, "    \"{}\": {v}", json_escape(name))?;
    }
    if !first {
        writeln!(w)?;
    }
    writeln!(w, "  }},")?;
    writeln!(w, "  \"gauges\": {{")?;
    let mut first = true;
    for (name, cur, hw) in &gauges {
        if !first {
            writeln!(w, ",")?;
        }
        first = false;
        write!(
            w,
            "    \"{}\": {{ \"current\": {cur}, \"hw\": {hw} }}",
            json_escape(name)
        )?;
    }
    if !first {
        writeln!(w)?;
    }
    writeln!(w, "  }},")?;
    writeln!(w, "  \"histograms\": {{")?;
    let mut first = true;
    for (name, count, sum, buckets) in &histograms {
        if !first {
            writeln!(w, ",")?;
        }
        first = false;
        write!(
            w,
            "    \"{}\": {{ \"count\": {count}, \"sum\": {sum}, \"buckets\": [",
            json_escape(name)
        )?;
        for (i, (log2, n)) in buckets.iter().enumerate() {
            if i > 0 {
                write!(w, ", ")?;
            }
            write!(w, "{{ \"log2\": {log2}, \"count\": {n} }}")?;
        }
        write!(w, "] }}")?;
    }
    if !first {
        writeln!(w)?;
    }
    writeln!(w, "  }},")?;
    writeln!(w, "  \"spans_recorded\": {span_count}")?;
    writeln!(w, "}}")
}

/// [`write_metrics_json`] into a `String`.
pub fn metrics_json() -> String {
    let mut buf = Vec::new();
    write_metrics_json(&mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("metrics JSON is ASCII")
}

/// Serialize recorded spans in Chrome/Perfetto `trace_event` JSON: an array
/// of complete (`"ph": "X"`, with `ts`/`dur` in microseconds) and instant
/// (`"ph": "i"`) events, followed by one `counter` (`"ph": "C"`) event per
/// gauge per sampler snapshot — memory growth renders as counter tracks on
/// the same timeline as the spans. Load the file at `ui.perfetto.dev` or
/// `chrome://tracing`.
pub fn write_trace_json<W: Write>(mut w: W) -> std::io::Result<()> {
    flush_thread_spans();
    let (spans, samples): (Vec<SpanRec>, Vec<Snapshot>) = if REGISTRY.get().is_none() {
        (Vec::new(), Vec::new())
    } else {
        let reg = registry();
        (reg.spans.clone(), reg.samples.clone())
    };
    let counter_events: usize = samples.iter().map(|s| s.values.len()).sum();
    let total = spans.len() + counter_events;
    let mut written = 0usize;
    let comma = |written: &mut usize| {
        *written += 1;
        if *written < total {
            ","
        } else {
            ""
        }
    };
    writeln!(w, "[")?;
    for s in &spans {
        let ts = s.start_ns as f64 / 1000.0;
        if s.instant {
            writeln!(
                w,
                "  {{\"name\": \"{}\", \"cat\": \"stint\", \"ph\": \"i\", \"s\": \"t\", \
                 \"ts\": {ts:.3}, \"pid\": 1, \"tid\": {}}}{}",
                json_escape(s.name),
                s.tid,
                comma(&mut written)
            )?;
        } else {
            let dur = s.dur_ns as f64 / 1000.0;
            writeln!(
                w,
                "  {{\"name\": \"{}\", \"cat\": \"stint\", \"ph\": \"X\", \"ts\": {ts:.3}, \
                 \"dur\": {dur:.3}, \"pid\": 1, \"tid\": {}}}{}",
                json_escape(s.name),
                s.tid,
                comma(&mut written)
            )?;
        }
    }
    for snap in &samples {
        let ts = snap.t_ns as f64 / 1000.0;
        for (name, v) in &snap.values {
            writeln!(
                w,
                "  {{\"name\": \"{}\", \"cat\": \"stint\", \"ph\": \"C\", \"ts\": {ts:.3}, \
                 \"pid\": 1, \"args\": {{\"value\": {v}}}}}{}",
                json_escape(name),
                comma(&mut written)
            )?;
        }
    }
    writeln!(w, "]")
}

/// [`write_trace_json`] into a `String`.
pub fn trace_json() -> String {
    let mut buf = Vec::new();
    write_trace_json(&mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("trace JSON is ASCII")
}

/// Serialize the sampler's gauge snapshots as a memory time series:
///
/// ```json
/// {
///   "schema": "stint-obs-memseries-v1",
///   "interval_ms": 10,
///   "samples": [
///     { "t_ns": 1000, "gauges": { "ivtree.bytes": 8192, ... } },
///     ...
///   ]
/// }
/// ```
///
/// Timestamps are nanoseconds since the registry epoch and strictly
/// non-decreasing (snapshots are taken under the registry lock).
pub fn write_mem_series_json<W: Write>(mut w: W) -> std::io::Result<()> {
    let samples: Vec<Snapshot> = if REGISTRY.get().is_none() {
        Vec::new()
    } else {
        registry().samples.clone()
    };
    writeln!(w, "{{")?;
    writeln!(w, "  \"schema\": \"stint-obs-memseries-v1\",")?;
    writeln!(
        w,
        "  \"interval_ms\": {},",
        sampler::interval_ms().unwrap_or(0)
    )?;
    writeln!(w, "  \"samples\": [")?;
    for (i, snap) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        write!(w, "    {{ \"t_ns\": {}, \"gauges\": {{", snap.t_ns)?;
        for (j, (name, v)) in snap.values.iter().enumerate() {
            if j > 0 {
                write!(w, ", ")?;
            }
            write!(w, "\"{}\": {v}", json_escape(name))?;
        }
        writeln!(w, "}} }}{comma}")?;
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")
}

/// [`write_mem_series_json`] into a `String`.
pub fn mem_series_json() -> String {
    let mut buf = Vec::new();
    write_mem_series_json(&mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("mem-series JSON is ASCII")
}

/// Sanitize a metric name for Prometheus exposition: every character
/// outside `[a-zA-Z0-9_:]` becomes `_` (so `serve.latency_ms.ok` →
/// `serve_latency_ms_ok`).
pub fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Serialize the registry in the Prometheus text exposition format
/// (version 0.0.4): every metric is preceded by `# HELP` and `# TYPE`
/// lines; counters (including late-bound named values) export as
/// `counter`, gauges as two `gauge` families (`<name>` current and
/// `<name>_hw` watermark), histograms as the native `histogram` type with
/// cumulative `le` buckets on the log2 boundaries (`le="2^i - 1"` for
/// bucket `i`, integer samples) closed by `le="+Inf"`, `_sum` and
/// `_count`. Families are sorted by name, so output is deterministic for
/// a deterministic run. Produces only the two header comment lines when
/// the registry was never initialized.
pub fn write_prometheus_text<W: Write>(mut w: W) -> std::io::Result<()> {
    type HistRow = (&'static str, u64, u64, Vec<u64>);
    let (counters, gauges, histograms) = {
        if REGISTRY.get().is_none() {
            (BTreeMap::new(), Vec::new(), Vec::new())
        } else {
            let reg = registry();
            let mut counters: BTreeMap<&'static str, u64> = reg.named.clone();
            for c in &reg.counters {
                *counters.entry(c.name).or_insert(0) += c.get();
            }
            let mut gauges: Vec<(&'static str, u64, u64)> = reg
                .gauges
                .iter()
                .map(|g| (g.name, g.get(), g.high_water()))
                .collect();
            gauges.sort_by_key(|(name, ..)| *name);
            let mut histograms: Vec<HistRow> = reg
                .histograms
                .iter()
                .map(|h| (h.name, h.count(), h.sum(), h.bucket_counts()))
                .collect();
            histograms.sort_by_key(|(name, ..)| *name);
            (counters, gauges, histograms)
        }
    };
    writeln!(w, "# stint-obs Prometheus exposition")?;
    writeln!(
        w,
        "# (counters, gauges with _hw watermarks, log2 histograms)"
    )?;
    for (name, v) in &counters {
        let p = prom_name(name);
        writeln!(w, "# HELP {p} stint counter {name}")?;
        writeln!(w, "# TYPE {p} counter")?;
        writeln!(w, "{p} {v}")?;
    }
    for (name, cur, hw) in &gauges {
        let p = prom_name(name);
        writeln!(w, "# HELP {p} stint gauge {name}")?;
        writeln!(w, "# TYPE {p} gauge")?;
        writeln!(w, "{p} {cur}")?;
        writeln!(w, "# HELP {p}_hw high watermark of {name}")?;
        writeln!(w, "# TYPE {p}_hw gauge")?;
        writeln!(w, "{p}_hw {hw}")?;
    }
    for (name, count, sum, buckets) in &histograms {
        let p = prom_name(name);
        writeln!(w, "# HELP {p} stint log2 histogram {name}")?;
        writeln!(w, "# TYPE {p} histogram")?;
        let mut cum = 0u64;
        for (i, n) in buckets.iter().enumerate() {
            cum += n;
            if *n == 0 && i > 0 && i + 1 < buckets.len() {
                continue; // keep output compact: first/last + non-empty
            }
            let le = (1u128 << i) - 1; // bucket i holds integers ≤ 2^i - 1
            writeln!(w, "{p}_bucket{{le=\"{le}\"}} {cum}")?;
        }
        writeln!(w, "{p}_bucket{{le=\"+Inf\"}} {count}")?;
        writeln!(w, "{p}_sum {sum}")?;
        writeln!(w, "{p}_count {count}")?;
    }
    Ok(())
}

/// [`write_prometheus_text`] into a `String`.
pub fn prometheus_text() -> String {
    let mut buf = Vec::new();
    write_prometheus_text(&mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("prometheus text is ASCII")
}

// ---------------------------------------------------------------------------
// Counting global allocator (feature `obs-alloc`)
// ---------------------------------------------------------------------------

/// Process-level ground truth for the byte gauges: a counting wrapper
/// around the system allocator, opt-in via the `obs-alloc` feature.
///
/// Binaries that want the numbers install it:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: stint_obs::alloc_track::CountingAlloc =
///     stint_obs::alloc_track::CountingAlloc;
/// ```
///
/// Counting is raw atomics, unconditional (it cannot consult [`is_enabled`]
/// or the registry — both allocate), and therefore independent of the
/// observability gate; the sampler folds `process.alloc_bytes` into its
/// snapshots when this feature is on.
#[cfg(feature = "obs-alloc")]
pub mod alloc_track {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static LIVE: AtomicU64 = AtomicU64::new(0);
    static HW: AtomicU64 = AtomicU64::new(0);
    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Bytes currently allocated through the counting allocator.
    pub fn live_bytes() -> u64 {
        LIVE.load(Ordering::Relaxed)
    }

    /// Peak of [`live_bytes`] over the process lifetime.
    pub fn high_water_bytes() -> u64 {
        HW.load(Ordering::Relaxed)
    }

    /// Total successful allocations (incl. grows via `realloc`).
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    fn on_alloc(size: u64) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let now = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        HW.fetch_max(now, Ordering::Relaxed);
    }

    fn on_dealloc(size: u64) {
        let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(size))
        });
    }

    /// The counting allocator. Zero-sized; delegates to [`System`].
    pub struct CountingAlloc;

    // SAFETY: pure delegation to System; the atomics only observe sizes.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                on_dealloc(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }
}

// ---------------------------------------------------------------------------
// Test scoping
// ---------------------------------------------------------------------------

/// RAII guard for tests: enables observability with a fresh (reset) registry
/// and restores the previous enabled state (and span mode) on drop, so
/// obs-enabled test cases cannot leak state into later cases. Tests sharing
/// a process must serialize around it — the registry is process-global.
pub struct ScopedObs {
    prev_enabled: bool,
    prev_mode: u32,
    prev_sample_ms: u64,
}

impl ScopedObs {
    pub fn enable(cfg: ObsConfig) -> ScopedObs {
        let prev_enabled = is_enabled();
        let prev_mode = SPAN_MODE.load(Ordering::Relaxed);
        let prev_sample_ms = sampler::interval_ms().unwrap_or(0);
        enable(cfg);
        reset();
        ScopedObs {
            prev_enabled,
            prev_mode,
            prev_sample_ms,
        }
    }
}

impl Drop for ScopedObs {
    fn drop(&mut self) {
        flush_thread_spans();
        SPAN_MODE.store(self.prev_mode, Ordering::Relaxed);
        sampler::set_interval_ms(self.prev_sample_ms);
        ENABLED.store(self.prev_enabled, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The registry is process-global; tests that enable obs serialize here.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static M: OnceLock<Mutex<()>> = OnceLock::new();
        M.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_specs() {
        assert_eq!(ObsConfig::parse("").unwrap(), None);
        assert_eq!(ObsConfig::parse("off").unwrap(), None);
        assert_eq!(ObsConfig::parse("0").unwrap(), None);
        assert_eq!(
            ObsConfig::parse("on").unwrap(),
            Some(ObsConfig {
                spans: SpanMode::Sampled,
                sample_ms: None,
            })
        );
        assert_eq!(
            ObsConfig::parse("counters").unwrap(),
            Some(ObsConfig::COUNTERS)
        );
        assert_eq!(ObsConfig::parse("full").unwrap(), Some(ObsConfig::FULL));
        assert_eq!(
            ObsConfig::parse("counters,spans=full").unwrap(),
            Some(ObsConfig::FULL)
        );
        assert_eq!(
            ObsConfig::parse("spans=off").unwrap(),
            Some(ObsConfig::COUNTERS)
        );
        assert_eq!(
            ObsConfig::parse("counters,sample=5").unwrap(),
            Some(ObsConfig {
                spans: SpanMode::Off,
                sample_ms: Some(5),
            })
        );
        // `sample=0` enables observability (with the default sampled spans)
        // but leaves the sampler off.
        assert_eq!(
            ObsConfig::parse("sample=0").unwrap(),
            Some(ObsConfig {
                spans: SpanMode::Sampled,
                sample_ms: None,
            })
        );
        assert!(ObsConfig::parse("frobnicate").is_err());
        assert!(ObsConfig::parse("spans=lots").is_err());
        assert!(ObsConfig::parse("sample=soon").is_err());
    }

    #[test]
    fn disabled_touches_record_nothing() {
        let _g = global_lock();
        static C: Counter = Counter::new("test.disabled_counter");
        static H: Histogram = Histogram::new("test.disabled_hist");
        assert!(!is_enabled());
        C.add(5);
        C.record_max(9);
        H.observe(3);
        add("test.disabled_named", 1);
        event("test.disabled_event");
        {
            let _s = span("test.disabled_span");
        }
        assert_eq!(C.get(), 0);
        assert_eq!(H.count(), 0);
        // Counters stay unregistered, so an enabled run elsewhere would not
        // even list them.
        assert!(!C.registered.load(Ordering::Relaxed));
    }

    #[test]
    fn counters_and_histograms_register_and_accumulate() {
        let _g = global_lock();
        static C: Counter = Counter::new("test.counter");
        static HW: Counter = Counter::new("test.high_water");
        static H: Histogram = Histogram::new("test.hist");
        let _scope = ScopedObs::enable(ObsConfig::COUNTERS);
        C.add(2);
        C.incr();
        HW.record_max(7);
        HW.record_max(3);
        H.observe(0);
        H.observe(1);
        H.observe(5);
        add("test.named", 40);
        add("test.named", 2);
        assert_eq!(C.get(), 3);
        assert_eq!(HW.get(), 7);
        assert_eq!(H.count(), 3);
        assert_eq!(H.sum(), 6);
        let json = metrics_json();
        assert!(json.contains("\"test.counter\": 3"), "{json}");
        assert!(json.contains("\"test.high_water\": 7"), "{json}");
        assert!(json.contains("\"test.named\": 42"), "{json}");
        // 5 lands in bucket 3 ([4, 8)); 0 in bucket 0; 1 in bucket 1.
        assert!(json.contains("\"test.hist\""), "{json}");
        assert!(json.contains("{ \"log2\": 3, \"count\": 1 }"), "{json}");
        assert!(json.contains("{ \"log2\": 0, \"count\": 1 }"), "{json}");
    }

    #[test]
    fn spans_and_events_export_as_trace_events() {
        let _g = global_lock();
        let _scope = ScopedObs::enable(ObsConfig::FULL);
        {
            let s = span("test.work");
            assert!(s.is_recording());
            std::hint::black_box(0);
        }
        event("test.instant");
        let json = trace_json();
        assert!(json.trim_start().starts_with('['), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(json.contains("\"name\": \"test.work\""), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"ph\": \"i\""), "{json}");
        assert!(json.contains("\"dur\": "), "{json}");
        let metrics = metrics_json();
        assert!(!metrics.contains("\"spans_recorded\": 0"), "{metrics}");
    }

    #[test]
    fn sampled_mode_records_first_span_per_thread() {
        let _g = global_lock();
        let _scope = ScopedObs::enable(ObsConfig {
            spans: SpanMode::Sampled,
            sample_ms: None,
        });
        let recorded: usize = std::thread::spawn(|| {
            (0..(SAMPLE_PERIOD * 2))
                .map(|_| span("test.sampled").is_recording() as usize)
                .sum()
        })
        .join()
        .expect("thread");
        assert_eq!(recorded, 2, "one span per SAMPLE_PERIOD per thread");
    }

    #[test]
    fn scoped_obs_restores_disabled_state() {
        let _g = global_lock();
        assert!(!is_enabled());
        {
            let _scope = ScopedObs::enable(ObsConfig::FULL);
            assert!(is_enabled());
            assert_eq!(span_mode(), SpanMode::Full);
        }
        assert!(!is_enabled());
        assert_eq!(span_mode(), SpanMode::Off);
    }

    #[test]
    fn exporters_work_uninitialized() {
        // Before anything registers, exporters produce valid empty JSON and
        // do NOT initialize the registry as a side effect.
        let json = metrics_json();
        assert!(json.contains("\"counters\""), "{json}");
        let trace = trace_json();
        assert!(trace.trim_start().starts_with('['), "{trace}");
    }

    #[test]
    fn escape_is_sound() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tend"), "tab\\u0009end");
    }

    #[test]
    fn gauge_add_sub_and_watermark() {
        let _g = global_lock();
        static G: Gauge = Gauge::new("test.gauge");
        let _scope = ScopedObs::enable(ObsConfig::COUNTERS);
        G.add(100);
        G.add(50);
        G.sub(120);
        assert_eq!(G.get(), 30);
        assert_eq!(G.high_water(), 150);
        // Saturating: over-subtraction clamps at zero, watermark survives.
        G.sub(1000);
        assert_eq!(G.get(), 0);
        assert_eq!(G.high_water(), 150);
        let json = metrics_json();
        assert!(
            json.contains("\"test.gauge\": { \"current\": 0, \"hw\": 150 }"),
            "{json}"
        );
        let snap = gauges_snapshot();
        assert!(snap.contains(&("test.gauge", 0, 150)), "{snap:?}");
    }

    #[test]
    fn gauge_reconcile_tracks_deltas() {
        let _g = global_lock();
        static G: Gauge = Gauge::new("test.reconcile_gauge");
        let _scope = ScopedObs::enable(ObsConfig::COUNTERS);
        let mut owned = 0u64;
        G.reconcile(&mut owned, 4096);
        assert_eq!((G.get(), owned), (4096, 4096));
        G.reconcile(&mut owned, 1024);
        assert_eq!((G.get(), owned), (1024, 1024));
        G.reconcile(&mut owned, 0);
        assert_eq!((G.get(), owned), (0, 0));
        assert_eq!(G.high_water(), 4096);
    }

    #[test]
    fn gauge_disabled_path_leaves_registry_untouched() {
        let _g = global_lock();
        static G: Gauge = Gauge::new("test.disabled_gauge");
        assert!(!is_enabled());
        G.add(7);
        G.sub(3);
        let mut owned = 0u64;
        G.reconcile(&mut owned, 9);
        assert_eq!(G.get(), 0);
        assert_eq!(G.high_water(), 0);
        assert_eq!(owned, 0, "reconcile must not track while disabled");
        assert!(!G.registered.load(Ordering::Relaxed));
        assert!(!gauges_snapshot().iter().any(|(n, ..)| *n == G.name()));
    }

    #[test]
    fn gauge_reset_zeroes_current_and_watermark() {
        let _g = global_lock();
        static G: Gauge = Gauge::new("test.reset_gauge");
        let _scope = ScopedObs::enable(ObsConfig::COUNTERS);
        G.add(10);
        reset();
        assert_eq!(G.get(), 0);
        assert_eq!(G.high_water(), 0);
    }

    #[test]
    fn histogram_log2_bucket_boundaries() {
        let _g = global_lock();
        static H: Histogram = Histogram::new("test.bucket_hist");
        let _scope = ScopedObs::enable(ObsConfig::COUNTERS);
        // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i). Probe
        // both edges of several buckets, including the top one.
        H.observe(0); // bucket 0
        H.observe(1); // bucket 1: [1, 2)
        H.observe(2); // bucket 2: [2, 4)
        H.observe(3); // bucket 2
        H.observe(4); // bucket 3: [4, 8)
        H.observe(7); // bucket 3
        H.observe(8); // bucket 4: [8, 16)
        H.observe(u64::MAX); // bucket 64: [2^63, 2^64)
        let json = metrics_json();
        for (log2, count) in [(0, 1), (1, 1), (2, 2), (3, 2), (4, 1), (64, 1)] {
            assert!(
                json.contains(&format!("{{ \"log2\": {log2}, \"count\": {count} }}")),
                "bucket {log2} wrong:\n{json}"
            );
        }
        assert_eq!(H.count(), 8);
    }

    #[test]
    fn quantile_over_log2_buckets() {
        let _g = global_lock();
        static H: Histogram = Histogram::new("test.quantile_hist");
        let _scope = ScopedObs::enable(ObsConfig::COUNTERS);
        assert_eq!(H.quantile(0.5), 0.0, "empty histogram");
        // 100 samples of exactly 8 → every quantile lands in bucket 4
        // ([8, 16)), so estimates are within that bucket.
        for _ in 0..100 {
            H.observe(8);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = H.quantile(q);
            assert!((8.0..16.0).contains(&v), "q={q} → {v}");
        }
        // Mixed: 90 zeros and 10 large values — p50 is 0, p99 is large.
        reset();
        for _ in 0..90 {
            H.observe(0);
        }
        for _ in 0..10 {
            H.observe(1 << 20);
        }
        assert_eq!(H.quantile(0.5), 0.0);
        let p99 = H.quantile(0.99);
        assert!(
            ((1 << 20) as f64..(1 << 21) as f64).contains(&p99),
            "p99={p99}"
        );
        // The free-function form agrees on the same buckets.
        assert_eq!(quantile_from_buckets(&H.bucket_counts(), 0.99), p99);
        assert_eq!(quantile_from_buckets(&[], 0.5), 0.0);
    }

    #[test]
    fn flight_recorder_round_trip_and_wrap() {
        let _g = global_lock();
        let _scope = ScopedObs::enable(ObsConfig::COUNTERS);
        flight::reset();
        assert_eq!(flight::records_written(), 0);
        assert!(flight::snapshot().is_empty());
        flight::record(7, 2, 1, 42);
        flight::record(8, 3, 0, 0);
        let snap = flight::snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            (
                snap[0].session,
                snap[0].kind,
                snap[0].status,
                snap[0].payload
            ),
            (7, 2, 1, 42)
        );
        assert!(snap[1].t_ns >= snap[0].t_ns, "oldest first");
        // Overflow the ring: only the last CAP records survive, in order.
        flight::reset();
        for i in 0..(flight::CAP as u64 + 100) {
            flight::record(i as u32, 0, 0, i);
        }
        let snap = flight::snapshot();
        assert_eq!(snap.len(), flight::CAP);
        assert_eq!(snap[0].payload, 100, "oldest surviving record");
        assert_eq!(
            snap.last().map(|e| e.payload),
            Some(flight::CAP as u64 + 99)
        );
        assert_eq!(flight::records_written(), flight::CAP as u64 + 100);
        let json = flight::json();
        assert!(json.contains("\"schema\": \"stint-flight-v1\""), "{json}");
        assert!(json.contains("\"records_written\": 1124"), "{json}");
        flight::reset();
    }

    #[test]
    fn flight_recorder_disabled_is_inert() {
        let _g = global_lock();
        flight::reset();
        assert!(!is_enabled());
        flight::record(1, 1, 1, 1);
        assert_eq!(flight::records_written(), 0);
        assert!(flight::snapshot().is_empty());
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let _g = global_lock();
        static C: Counter = Counter::new("test.prom.counter");
        static G: Gauge = Gauge::new("test.prom.gauge");
        static H: Histogram = Histogram::new("test.prom_hist_ms");
        let _scope = ScopedObs::enable(ObsConfig::COUNTERS);
        C.add(3);
        G.add(100);
        G.sub(40);
        H.observe(0);
        H.observe(5);
        H.observe(900);
        let text = prometheus_text();
        assert!(text.contains("# TYPE test_prom_counter counter"), "{text}");
        assert!(text.contains("\ntest_prom_counter 3\n"), "{text}");
        assert!(text.contains("# TYPE test_prom_gauge gauge"), "{text}");
        assert!(text.contains("\ntest_prom_gauge 60\n"), "{text}");
        assert!(text.contains("\ntest_prom_gauge_hw 100\n"), "{text}");
        assert!(
            text.contains("# TYPE test_prom_hist_ms histogram"),
            "{text}"
        );
        assert!(
            text.contains("test_prom_hist_ms_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("test_prom_hist_ms_sum 905"), "{text}");
        assert!(text.contains("test_prom_hist_ms_count 3"), "{text}");
        // Cumulative bucket counts are monotone and end at the count.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("test_prom_hist_ms_bucket{le=\"") {
                let v: u64 = rest
                    .split("} ")
                    .nth(1)
                    .expect("bucket value")
                    .parse()
                    .expect("numeric");
                assert!(v >= last, "buckets regressed:\n{text}");
                last = v;
            }
        }
        assert_eq!(last, 3);
        // Every sample line's family has a preceding # TYPE line.
        let mut typed: Vec<String> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.push(rest.split(' ').next().expect("name").to_string());
            } else if !line.starts_with('#') && !line.is_empty() {
                let name = line
                    .split(['{', ' '])
                    .next()
                    .expect("metric name")
                    .to_string();
                let family = name
                    .strip_suffix("_bucket")
                    .or_else(|| name.strip_suffix("_sum"))
                    .or_else(|| name.strip_suffix("_count"))
                    .unwrap_or(&name);
                assert!(
                    typed.iter().any(|t| t == family || t == &name),
                    "sample {name} lacks a # TYPE line:\n{text}"
                );
            }
        }
    }

    #[test]
    fn sampler_snapshots_and_mem_series_export() {
        let _g = global_lock();
        static G: Gauge = Gauge::new("test.sampled_gauge");
        let _scope = ScopedObs::enable(ObsConfig {
            spans: SpanMode::Off,
            sample_ms: Some(1),
        });
        assert_eq!(sampler::interval_ms(), Some(1));
        G.add(512);
        sampler::sample_now();
        G.add(512);
        sampler::sample_now();
        assert!(sampler::samples_recorded() >= 2);
        let json = mem_series_json();
        assert!(
            json.contains("\"schema\": \"stint-obs-memseries-v1\""),
            "{json}"
        );
        assert!(json.contains("\"test.sampled_gauge\": 512"), "{json}");
        assert!(json.contains("\"test.sampled_gauge\": 1024"), "{json}");
        // Timestamps are non-decreasing.
        let mut last = 0u64;
        for line in json.lines() {
            if let Some(rest) = line.trim().strip_prefix("{ \"t_ns\": ") {
                let t: u64 = rest[..rest.find(',').expect("comma")]
                    .parse()
                    .expect("t_ns");
                assert!(t >= last, "timestamps regressed:\n{json}");
                last = t;
            }
        }
        // Snapshots render as Perfetto counter events on the trace timeline.
        let trace = trace_json();
        assert!(trace.contains("\"ph\": \"C\""), "{trace}");
        assert!(trace.contains("\"args\": {\"value\": 1024}"), "{trace}");
    }
}
