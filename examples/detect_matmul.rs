//! Race-detect the divide-and-conquer matrix-multiplication benchmark: the
//! correct version is certified race-free, the version with the forgotten
//! sync between accumulation phases is caught, and the report pinpoints the
//! racy region of `C`.
//!
//! ```sh
//! cargo run --release --example detect_matmul
//! ```

use stint::{detect, Variant};
use stint_suite::buggy::MmulMissingSync;
use stint_suite::mmul::Mmul;

fn main() {
    let n = 64;
    let b = 16;

    println!("== mmul n={n} b={b}: correct version under all variants ==");
    for v in Variant::ALL {
        let mut m = Mmul::new(n, b, 42);
        let o = detect(&mut m, v);
        m.verify().expect("wrong product");
        println!(
            "{:>9}: {:>8.2?}  strands={}  word-accesses={}  intervals={}  races={}",
            v.name(),
            o.wall,
            o.strands,
            o.stats.total_words(),
            o.stats.total_intervals(),
            o.report.total,
        );
        assert!(o.report.is_race_free());
    }

    println!("\n== mmul with the phase-separating sync removed ==");
    let mut buggy = MmulMissingSync::new(n, b, 42);
    let o = detect(&mut buggy, Variant::Stint);
    println!(
        "STINT reports {} races over {} distinct words",
        o.report.total,
        o.report.racy_words().len()
    );
    for race in o.report.races().iter().take(5) {
        println!("  {race}");
    }
    assert!(!o.report.is_race_free());
    // Every element of C is written by both phases: the racy region covers
    // the whole n×n result (2 words per f64).
    assert_eq!(o.report.racy_words().len(), n * n * 2);
    println!("racy region == the whole of C ({}x{} f64s) ✓", n, n);
}
