//! The paper's Section 7 generalization in action: the same interval access
//! history race-detecting a **2-D wavefront** computation (Smith–Waterman
//! sequence alignment) and a **software pipeline** — no SP-Order needed,
//! reachability is a coordinate comparison.
//!
//! ```sh
//! cargo run --release --example wavefront_alignment
//! ```

use stint_repro::grid::wavefront::{Pipeline, SmithWaterman};

fn main() {
    // --- Wavefront dynamic programming -----------------------------------
    let a = b"GATTACAGATTACAGGGACTGATTACA";
    let b = b"GCATGCGATTACATTTACGTGATTACA";
    let mut sw = SmithWaterman::new(a, b);
    let report = sw.detect();
    println!(
        "Smith-Waterman {}x{}: alignment score {}, races: {}",
        a.len() + 1,
        b.len() + 1,
        sw.score(),
        report.total
    );
    assert!(report.is_race_free());
    assert_eq!(sw.score(), SmithWaterman::reference_score(a, b));

    let mut buggy = SmithWaterman::new(a, b);
    buggy.buggy = true; // cells peek at their south-west neighbour
    let report = buggy.detect();
    println!(
        "  with the south-west peek bug: {} races, e.g. {}",
        report.total,
        report.races()[0]
    );
    assert!(!report.is_race_free());

    // --- Software pipeline ------------------------------------------------
    let mut p = Pipeline::new(64, 6);
    let report = p.detect();
    println!(
        "\nPipeline 64 items x 6 stages: races: {} (output verified: {})",
        report.total,
        p.buf == Pipeline::reference(64, 6)
    );
    assert!(report.is_race_free());

    let mut p = Pipeline::new(64, 6);
    p.buggy = true; // a stage peeks at the next item's input slot
    let report = p.detect();
    println!("  with the peeking stage bug: {} races", report.total);
    assert!(!report.is_race_free());

    println!("\nSame treap access history, different reachability component —");
    println!("the Section 7 claim, demonstrated.");
}
