//! The benchmarks are *real parallel programs*: this example runs the same
//! kernels on the `stint-cilkrt` work-stealing runtime and reports parallel
//! speedup — and shows the intended workflow: race-detect sequentially with
//! STINT first, then run in parallel with confidence.
//!
//! ```sh
//! cargo run --release --example parallel_speedup
//! ```

use std::time::Instant;
use stint::{detect, Variant};
use stint_cilkrt::ThreadPool;
use stint_suite::util::{max_abs_diff, naive_matmul, random_f64s, MatMut};

/// Parallel divide-and-conquer matmul on the work-stealing pool — the same
/// algorithm as `stint_suite::mmul`, with `pool.join` in place of
/// spawn/sync.
fn mm_par(pool: &ThreadPool, c: MatMut, a: MatMut, b: MatMut, bs: usize) {
    let n = c.rows;
    if n <= bs {
        for i in 0..n {
            for j in 0..n {
                let mut t = c.get(i, j);
                for k in 0..n {
                    t += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, t);
            }
        }
        return;
    }
    let h = n / 2;
    let [c11, c12, c21, c22] = c.quadrants(h, h);
    let [a11, a12, a21, a22] = a.quadrants(h, h);
    let [b11, b12, b21, b22] = b.quadrants(h, h);
    // Phase 1 — four independent quadrant products.
    pool.join(
        || {
            pool.join(
                || mm_par(pool, c11, a11, b11, bs),
                || mm_par(pool, c12, a11, b12, bs),
            )
        },
        || {
            pool.join(
                || mm_par(pool, c21, a21, b11, bs),
                || mm_par(pool, c22, a21, b12, bs),
            )
        },
    );
    // Phase 2.
    pool.join(
        || {
            pool.join(
                || mm_par(pool, c11, a12, b21, bs),
                || mm_par(pool, c12, a12, b22, bs),
            )
        },
        || {
            pool.join(
                || mm_par(pool, c21, a22, b21, bs),
                || mm_par(pool, c22, a22, b22, bs),
            )
        },
    );
}

fn main() {
    let n = 512;
    let bs = 32;

    // Step 1: certify the fork-join structure race-free with STINT
    // (sequentially, on a smaller instance of the same program).
    let outcome = detect(
        &mut stint_suite::mmul::Mmul::new(128, bs, 7),
        Variant::Stint,
    );
    assert!(outcome.report.is_race_free());
    println!(
        "STINT certified mmul race-free ({} strands, {} intervals checked)",
        outcome.strands,
        outcome.stats.total_intervals()
    );

    // Step 2: run the full-size kernel in parallel.
    let a = random_f64s(n * n, 1);
    let bm = random_f64s(n * n, 2);
    let mut c_seq = vec![0.0; n * n];
    let mut c_par = vec![0.0; n * n];

    let t0 = Instant::now();
    {
        let pool = ThreadPool::new(1);
        let c = MatMut::from_slice(&mut c_seq, n, n);
        let av = MatMut::from_slice_ref(&a, n, n);
        let bv = MatMut::from_slice_ref(&bm, n, n);
        pool.install(|| mm_par(&pool, c, av, bv, bs));
    }
    let t_seq = t0.elapsed();

    let workers = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(4);
    if workers == 1 {
        println!("note: only one hardware thread available — expect speedup ~1x");
    }
    let t0 = Instant::now();
    {
        let pool = ThreadPool::new(workers.max(2));
        let c = MatMut::from_slice(&mut c_par, n, n);
        let av = MatMut::from_slice_ref(&a, n, n);
        let bv = MatMut::from_slice_ref(&bm, n, n);
        pool.install(|| mm_par(&pool, c, av, bv, bs));
    }
    let t_par = t0.elapsed();

    println!(
        "mmul n={n}: 1 worker {:.0} ms, {} workers {:.0} ms — speedup {:.2}x",
        t_seq.as_secs_f64() * 1e3,
        workers.max(2),
        t_par.as_secs_f64() * 1e3,
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );

    // Same answer either way — and same as the naive product.
    assert!(max_abs_diff(&c_seq, &c_par) == 0.0, "schedules disagree");
    let mut want = vec![0.0; n * n];
    naive_matmul(&mut want, &a, &bm, n);
    assert!(max_abs_diff(&c_par, &want) < 1e-9 * n as f64);
    println!("parallel result verified against the naive product ✓");
}
