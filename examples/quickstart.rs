//! Quickstart: write a fork-join program against the `Cilk` trait, run it
//! under STINT, and read the race report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stint::{detect, Cilk, CilkProgram, Variant};

/// A parallel sum over a shared accumulator — with a classic bug: the two
/// halves also both update a shared `checksum` cell without synchronization.
struct ParallelSum {
    data: Vec<i64>,
    partial: [i64; 2],
    checksum: i64,
    buggy: bool,
}

impl ParallelSum {
    fn new(n: usize, buggy: bool) -> Self {
        ParallelSum {
            data: (0..n as i64).collect(),
            partial: [0; 2],
            checksum: 0,
            buggy,
        }
    }
}

/// Byte address of a value, as the instrumentation hooks report it.
fn addr_of<T>(v: &T) -> usize {
    v as *const T as usize
}

impl CilkProgram for ParallelSum {
    fn run<C: Cilk>(&mut self, ctx: &mut C) {
        let n = self.data.len();
        let (lo, hi) = self.data.split_at(n / 2);
        let (p0, p1) = {
            let [a, b] = &mut self.partial;
            (a, b)
        };
        let checksum = &mut self.checksum as *mut i64;
        let buggy = self.buggy;
        let p0_addr = addr_of(&*p0);
        let p1_addr = addr_of(&*p1);

        // Child: sums the low half.
        ctx.spawn(move |c| {
            c.load_range(lo.as_ptr() as usize, lo.len() * 8);
            *p0 = lo.iter().sum();
            c.store(addr_of(p0), 8);
            if buggy {
                // BUG: updates the shared checksum in parallel with the
                // continuation doing the same.
                c.load(checksum as usize, 8);
                c.store(checksum as usize, 8);
                unsafe { *checksum += *p0 };
            }
        });

        // Continuation: sums the high half — logically parallel with the child.
        ctx.load_range(hi.as_ptr() as usize, hi.len() * 8);
        *p1 = hi.iter().sum();
        ctx.store(addr_of(p1), 8);
        if buggy {
            ctx.load(checksum as usize, 8);
            ctx.store(checksum as usize, 8);
            unsafe { *checksum += *p1 };
        }

        ctx.sync();

        // After the sync everything is ordered: this is race-free.
        ctx.load(p0_addr, 8);
        ctx.load(p1_addr, 8);
        ctx.store(checksum as usize, 8);
        self.checksum = self.partial[0] + self.partial[1];
    }
}

fn main() {
    println!("== buggy version ==");
    let outcome = detect(&mut ParallelSum::new(1 << 16, true), Variant::Stint);
    println!(
        "strands: {}, read intervals: {}, write intervals: {}",
        outcome.strands, outcome.stats.read.intervals, outcome.stats.write.intervals
    );
    println!("races reported: {}", outcome.report.total);
    for race in outcome.report.races().iter().take(4) {
        println!("  {race}");
    }
    assert!(!outcome.report.is_race_free());

    println!("\n== fixed version (checksum updated after the sync) ==");
    let outcome = detect(&mut ParallelSum::new(1 << 16, false), Variant::Stint);
    println!("races reported: {}", outcome.report.total);
    assert!(outcome.report.is_race_free());
    println!("race-free ✓");
}
