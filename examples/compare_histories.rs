//! Compare the four access-history configurations of the paper (plus the
//! BTreeMap ablation) on every benchmark — a miniature of Figures 5–7.
//!
//! ```sh
//! cargo run --release --example compare_histories             # test sizes
//! cargo run --release --example compare_histories -- s       # ~a minute
//! ```

use stint::{Config, Variant};
use stint_suite::{Scale, Workload, NAMES};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|a| Scale::parse(&a))
        .unwrap_or(Scale::Test);

    let variants = [
        Variant::Vanilla,
        Variant::Compiler,
        Variant::CompRts,
        Variant::Stint,
        Variant::StintFlat,
    ];

    println!(
        "{:<7} {:>6} | {:>9} {:>9} {:>9} {:>9} {:>12}   intervals r/w (STINT)",
        "bench", "base", "vanilla", "compiler", "comp+rts", "STINT", "STINT(btree)",
    );
    for name in NAMES {
        let mut w = Workload::by_name(name, scale);
        let base = stint::run_baseline(&mut w);
        let mut cells = Vec::new();
        let mut ivs = (0, 0);
        for v in variants {
            let mut w = Workload::by_name(name, scale);
            let mut cfg = Config::new(v);
            cfg.collect_racy_words = false;
            let o = stint::detect_with(&mut w, cfg);
            assert!(o.report.is_race_free(), "{name} raced under {v}!");
            cells.push(format!(
                "{:>8.2}x",
                o.wall.as_secs_f64() / base.as_secs_f64()
            ));
            if v == Variant::Stint {
                ivs = (o.stats.read.intervals, o.stats.write.intervals);
            }
        }
        println!(
            "{:<7} {:>5.0}ms | {} {} {} {} {:>12}   {}/{}",
            name,
            base.as_secs_f64() * 1e3,
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            ivs.0,
            ivs.1
        );
    }
    println!();
    println!("Overheads relative to the uninstrumented serial baseline.");
    println!("The paper's headline: STINT cuts the vanilla geomean overhead ~4x (78x -> 19x).");
}
