//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's ergonomics: `lock()`
//! returns the guard directly (poisoning is swallowed — a poisoned lock
//! yields its inner state, matching parking_lot's no-poisoning model), and
//! `Condvar::wait_for` takes `&mut MutexGuard` instead of consuming it.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard vacated")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard vacated")
    }
}

#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Returns whether a thread was woken (std does not report this; we
    /// mirror parking_lot's signature loosely and always claim false/0 is
    /// unknowable, so callers should not branch on it).
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard vacated");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard vacated");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        drop(g);
    }

    #[test]
    fn condvar_wakeup_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            *started = true;
            cv.notify_all();
            drop(started);
        });
        let (m, cv) = &*pair;
        let mut started = m.lock();
        while !*started {
            let res = cv.wait_for(&mut started, Duration::from_millis(100));
            if res.timed_out() && !*started {
                // Keep waiting; the helper thread may not have run yet.
                continue;
            }
        }
        assert!(*started);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
    }
}
