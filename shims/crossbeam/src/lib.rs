//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `deque` module is provided, because that is all this workspace
//! uses (the `stint-cilkrt` work-stealing pool). The real crate's
//! `Worker`/`Stealer` pair is a lock-free Chase–Lev deque; here both ends
//! share a `Mutex<VecDeque>`. Semantics are preserved — owner pushes/pops
//! LIFO at the back, thieves steal FIFO from the front, `Injector` is a
//! shared FIFO — but contended throughput is lower. Correctness of the pool
//! does not depend on lock-freedom, only on these ordering guarantees.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt. The locked backing store never needs a
    /// retry, but the variant exists because callers match on it.
    #[derive(Debug)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Owner end of a work-stealing deque (LIFO for the owner).
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// Thief end of a work-stealing deque (FIFO for thieves).
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Worker<T> {
        /// A deque whose owner operates in LIFO order (the Cilk discipline).
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// FIFO-owner flavor; same backing store here.
        pub fn new_fifo() -> Self {
            Self::new_lifo()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.lock().pop_back()
        }

        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        pub fn len(&self) -> usize {
            self.lock().len()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }
    }

    /// A shared FIFO queue for submissions from outside the worker set.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        pub fn steal(&self) -> Steal<T> {
            let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::Arc;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert!(matches!(s.steal(), Steal::Success(1)));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert!(matches!(inj.steal(), Steal::Success("a")));
        assert!(matches!(inj.steal(), Steal::Success("b")));
        assert!(matches!(inj.steal(), Steal::Empty));
    }

    #[test]
    fn concurrent_stealing_loses_nothing() {
        let w = Worker::new_lifo();
        for i in 0..10_000u64 {
            w.push(i);
        }
        let stealers: Vec<_> = (0..4).map(|_| w.stealer()).collect();
        let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let handles: Vec<_> = stealers
            .into_iter()
            .map(|s| {
                let total = Arc::clone(&total);
                std::thread::spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            total.load(std::sync::atomic::Ordering::Relaxed),
            10_000 * 9_999 / 2
        );
    }
}
