//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the narrow slice of the `rand` 0.10 API it actually uses: the [`Rng`]
//! core trait, the [`RngExt`] sampling extension (`random`, `random_range`,
//! `random_bool`), [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]
//! (xoshiro256++ here — statistically strong and fast; no crypto claims).
//!
//! Determinism matters more than distribution subtleties for this repo: every
//! consumer seeds explicitly and only needs reproducible streams. Integer
//! range sampling uses the multiply-shift reduction (Lemire) which has
//! negligible bias for the small ranges used in tests and data generation.

/// Core random source: everything derives from `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`RngExt::random`].
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in [0, 1).
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, n)` (n > 0) via 128-bit multiply-shift.
#[inline]
fn below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end - self.start) as u64;
                self.start + below(rng, width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, width + 1) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, width + 1) as i128) as $t
            }
        }
    )*};
}
range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// The sampling extension methods (`rand` 0.9+ naming).
pub trait RngExt: Rng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the shim's `StdRng`. Deterministic, seedable, fast.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through splitmix64, as rand_core does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.random_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(1usize..=5);
            assert!((1..=5).contains(&y));
            let z = r.random_range(-4i64..9);
            assert!((-4..9).contains(&z));
            let f = r.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
        // Extreme signed range must not overflow.
        for _ in 0..1000 {
            let v = r.random_range(i64::MIN / 4..i64::MAX / 4);
            assert!((i64::MIN / 4..i64::MAX / 4).contains(&v));
        }
    }

    #[test]
    fn random_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| r.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn values_cover_range() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
