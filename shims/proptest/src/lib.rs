//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`strategy::Strategy`]
//! trait with `prop_map`/`boxed`, range and tuple strategies, [`Just`],
//! `any::<T>()`, `collection::vec`, weighted/unweighted `prop_oneof!`, and
//! the `proptest!` test macro with `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case index and the test's
//!   deterministic seed; cases are perfectly reproducible (the RNG stream is
//!   a pure function of the test name), so a failure can be replayed and
//!   printed by the test body itself.
//! * **`*.proptest-regressions` files are ignored** — there is no persistence
//!   layer.
//! * `PROPTEST_CASES` in the environment overrides the configured case count
//!   (same escape hatch real proptest offers).

pub mod strategy {
    use std::sync::Arc;

    pub use rand::rngs::StdRng as TestRng;
    use rand::RngExt;

    /// A generator of values of type `Value`. Generation-only: no value
    /// trees, no shrinking.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cheaply clonable type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Whole-domain uniform strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    /// `any::<T>()` — uniform over `T`'s whole domain.
    pub fn any<T: rand::Standard>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }

    impl<T: rand::Standard> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($S:ident . $v:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$v.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Weighted choice over same-typed arms; built by `prop_oneof!`.
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            OneOf { arms, total }
        }
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.random_range(0..self.total);
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::RngExt;

    /// Inclusive length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    pub use super::strategy::TestRng;

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input; not a failure.
        Reject(String),
        /// A `prop_assert*` fired.
        Fail(String),
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }

        /// Case count after applying the `PROPTEST_CASES` env override.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    /// Deterministic per-test seed: FNV-1a of the test's full path.
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    l, r, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// The test harness macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes an ordinary `#[test]` (the user writes the `#[test]` attribute
/// inside the block; it passes through like any other attribute, exactly as
/// in real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __cfg.resolved_cases();
            let __path = concat!(module_path!(), "::", stringify!($name));
            let __seed = $crate::test_runner::seed_for(__path);
            let mut __rng =
                <$crate::test_runner::TestRng as ::rand::SeedableRng>::seed_from_u64(__seed);
            let mut __rejects: u32 = 0;
            let mut __case: u32 = 0;
            while __case < __cases {
                let __r = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __r {
                    ::std::result::Result::Ok(()) => __case += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejects += 1;
                        if __rejects > __cfg.max_global_rejects {
                            panic!(
                                "{}: too many prop_assume! rejections ({})",
                                __path, __rejects
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "{}: case {} failed (seed {:#x}): {}",
                            __path, __case, __seed, msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Toy {
        Pair(u64, bool),
        Stop,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 3u64..17, (y, b) in (1u32..=4, any::<bool>())) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_and_oneof(v in crate::collection::vec(
            prop_oneof![
                3 => (0u64..10, any::<bool>()).prop_map(|(a, b)| Toy::Pair(a, b)),
                1 => Just(Toy::Stop),
            ],
            1..8,
        )) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for t in &v {
                if let Toy::Pair(a, _) = t {
                    prop_assert!(*a < 10, "a = {}", a);
                }
            }
        }

        #[test]
        fn assume_filters(mut n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            n += 2;
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn boxed_is_clone_and_deterministic() {
        use crate::strategy::{Strategy, TestRng};
        use ::rand::SeedableRng;
        let s = (0u64..50).prop_map(|x| x * 2).boxed();
        let s2 = s.clone();
        let mut r1 = TestRng::seed_from_u64(9);
        let mut r2 = TestRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s2.generate(&mut r2));
        }
    }
}
