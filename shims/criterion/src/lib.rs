//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `criterion_group!` (both forms) and `criterion_main!` — backed by a small
//! median-of-samples wall-clock harness instead of criterion's full
//! statistical machinery.
//!
//! Behavior notes:
//!
//! * `--test` on the command line (what `cargo test` passes to bench
//!   targets) runs every benchmark exactly once and prints `ok`, like real
//!   criterion's test mode.
//! * A positional argument acts as a substring filter on benchmark names.
//! * Each benchmark is calibrated from one warmup sample, then measured for
//!   `sample_size` samples whose per-sample iteration count targets
//!   `CRITERION_SAMPLE_MS` milliseconds (default 5); expensive benchmarks
//!   degrade to one iteration per sample rather than blowing the budget.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation; only affects the printed rate line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark name with a parameter, e.g. `append/1000`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `iters` times, timing the whole batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
    sample_ms: u64,
}

impl Settings {
    fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Harness flags cargo or users may pass; no-ops here.
                "--bench" | "--quiet" | "-q" | "--verbose" | "--nocapture" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        let sample_ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5);
        Settings {
            sample_size: 100,
            test_mode,
            filter,
            sample_ms,
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_args(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Present for signature compatibility; args are already applied.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, &self.settings, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, &self.settings, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, &self.settings, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, s: &Settings, tp: Option<Throughput>, mut f: F) {
    if let Some(filter) = &s.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    if s.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }
    // Calibrate from one warmup sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(s.sample_ms);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000_000) as u64;
    // Expensive benchmarks: fewer samples rather than a blown budget.
    let samples = if per_iter > target {
        s.sample_size.min(10)
    } else {
        s.sample_size
    };
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.iters = iters;
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = per_iter_ns[per_iter_ns.len() - 1];
    let rate = match tp {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  thrpt: {}/s", human_count(n as f64 * 1e9 / median))
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  thrpt: {}B/s", human_count(n as f64 * 1e9 / median))
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} time: [{} {} {}]{rate}",
        human_time(lo),
        human_time(median),
        human_time(hi),
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_count(x: f64) -> String {
    if x < 1_000.0 {
        format!("{x:.1} ")
    } else if x < 1_000_000.0 {
        format!("{:.2} K", x / 1_000.0)
    } else if x < 1_000_000_000.0 {
        format!("{:.2} M", x / 1_000_000.0)
    } else {
        format!("{:.2} G", x / 1_000_000_000.0)
    }
}

/// Both real-criterion forms:
/// `criterion_group!(benches, f, g)` and
/// `criterion_group! { name = benches; config = ...; targets = f, g }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_iters() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 37,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 37);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_apis_compose() {
        // Settings forced into test mode so this stays instant.
        let mut c = Criterion {
            settings: Settings {
                sample_size: 10,
                test_mode: true,
                filter: None,
                sample_ms: 1,
            },
        };
        let mut hits = 0u32;
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(10);
            g.throughput(Throughput::Elements(4));
            g.bench_with_input(BenchmarkId::new("in", 4), &4u32, |b, &n| {
                b.iter(|| hits += n)
            });
            g.bench_function("plain", |b| b.iter(|| hits += 1));
            g.finish();
        }
        c.bench_function("top", |b| b.iter(|| hits += 1));
        // Each benchmark ran exactly one iteration in test mode.
        assert_eq!(hits, 4 + 1 + 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            settings: Settings {
                sample_size: 10,
                test_mode: true,
                filter: Some("match-me".into()),
                sample_ms: 1,
            },
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("yes/match-me/1", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
